/**
 * @file
 * Tenant bookkeeping shared by the two fleet engines.
 *
 * The epoch loop (server.cc) and the discrete-event engine
 * (event_engine.cc) must construct tenants — and summarise finished
 * runs — through *identical* code paths, or their reports could drift
 * apart in ways the differential tests would then chase through two
 * divergent copies. This header is that single path: the persistent
 * Tenant record, the gate-composition recipe that wires a tenant's
 * lease into its session, and the report finalisation that turns
 * drained job records into fleet aggregates.
 */
#ifndef POWERDIAL_FLEET_TENANT_H
#define POWERDIAL_FLEET_TENANT_H

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "fleet/observability.h"
#include "fleet/server.h"

namespace powerdial::fleet::detail {

/**
 * Provision the serve's cluster the way both engines must: from the
 * catalog and class mix when a catalog is configured, else the legacy
 * homogeneous fleet of `machines` copies of `machine`.
 */
inline sim::Cluster
makeCluster(const ServerOptions &options)
{
    if (!options.catalog.empty())
        return sim::Cluster(options.catalog, options.class_mix);
    return sim::Cluster(options.machines, options.machine);
}

/**
 * One admitted job, persistent across epochs: its session, private
 * clone, simulated machine, and metrics probe live as long as the job
 * is in flight, and its lease is rewritten by the arbiter at every
 * arbitration round. Tenants are heap-allocated and never move, so the
 * session's pointers into the clone and table (and the gate's pointer
 * back into the tenant) stay valid for the whole run.
 */
struct Tenant
{
    std::size_t job = 0;
    std::size_t input = 0;
    std::size_t machine_index = 0;
    std::size_t arrival_epoch = 0;
    double arrival_time_s = 0.0; //!< Fleet virtual time at admission
                                 //!< (event engine; the epoch loop
                                 //!< derives times from arrival_epoch).

    std::unique_ptr<core::App> app;
    core::KnobTable table;
    sim::Machine machine;
    ArbitrationLease lease;
    std::size_t applied_generation = 0; //!< Gate-side: last applied.
    double slice_deadline_s = 0.0;      //!< Tenant-local slice end.
    std::size_t beats_reported = 0;     //!< Beats already attributed
                                        //!< to earlier epochs' rates.

    explicit Tenant(const sim::Machine::Config &config)
        : machine(config)
    {
    }

    std::optional<MetricsHub::Probe> probe;
    /** Structured trace stream of this job (present when the serve
     *  has a TraceSink attached). */
    std::optional<obs::TraceProbe> trace;
    std::optional<core::Session> session;
    bool started = false;
    bool done = false;
};

/**
 * Build one tenant the way both engines must: probe seeded from the
 * job's identity and offered metadata, session gated by (caller's
 * gate, lease re-read, lease-driven duty-cycle pause) in that order.
 * The lease re-read gate applies changed terms within one beat of an
 * arbiter rewrite and reports the applied generation to the metrics
 * probe. An offer with the kRoundRobinTenant sentinel resolves its
 * input by the legacy round-robin-on-job-id rule. The tenant's private
 * machine is built from @p host_config — the *class* configuration of
 * the machine the job was placed on (cluster.configOf(machine_index)),
 * so a job landing on a little node simulates little-node frequency,
 * power, and speed tables, not the fleet default's.
 */
inline std::unique_ptr<Tenant>
makeTenant(const ServerOptions &options,
           const core::ResponseModel &model, MetricsHub &hub,
           const sim::Machine::Config &host_config, std::size_t job,
           std::size_t machine_index, std::size_t arrival_epoch,
           double arrival_time_s, const workload::OfferedJob &offer,
           double predicted_s, std::unique_ptr<core::App> app,
           core::KnobTable table)
{
    auto tenant = std::make_unique<Tenant>(host_config);
    Tenant *t = tenant.get();
    t->job = job;
    t->input = offer.tenant == kRoundRobinTenant
        ? options.tenants[job % options.tenants.size()]
        : offer.tenant;
    t->machine_index = machine_index;
    t->arrival_epoch = arrival_epoch;
    t->arrival_time_s = arrival_time_s;
    t->app = std::move(app);
    t->table = std::move(table);

    JobRecord seed;
    seed.job = t->job;
    seed.tenant = t->input;
    seed.epoch = arrival_epoch;
    seed.machine = t->machine_index;
    seed.job_class = offer.job_class;
    seed.deadline_s = offer.deadline_s;
    seed.predicted_s = predicted_s;
    t->probe.emplace(hub.probe(0, seed));

    if (options.trace != nullptr)
        t->trace.emplace(*options.trace,
                         obs::TraceProbe::Identity{
                             t->job, t->input, t->machine_index,
                             offer.job_class, arrival_time_s});

    // The tenant's gate: the caller's gate first, then the lease
    // re-read (terms applied within one beat of the rewrite), then
    // the lease-driven duty-cycle pause.
    core::SessionOptions session_options = options.session;
    session_options.withGate(core::composeGates(
        {options.session.gate,
         [t](core::BeatGateContext &ctx) {
             const ArbitrationLease &lease = t->lease;
             if (t->applied_generation != lease.generation) {
                 ctx.machine.setPStateCap(lease.pstate_cap);
                 ctx.machine.setShare(lease.share);
                 ctx.machine.setUtilization(lease.utilization);
                 t->applied_generation = lease.generation;
                 t->probe->noteLease(lease.generation);
             }
         },
         core::makeDutyCycleGate([t]() { return t->lease.pause_ratio; })}));
    t->session.emplace(*t->app, t->table, model,
                       std::move(session_options));
    return tenant;
}

/**
 * Serial admission of one batch of offered jobs, the way both engines
 * must run it: every offer goes through Scheduler::tryAdmit in arrival
 * order, and each decision is attributed through the tracer —
 * per-candidate placement costs (computed against the pre-placement
 * occupancy the policy actually ranked), then the admit (with the
 * prospective fleet job id) or shed record. Offers the composer never
 * numbered get a serial id from @p next_offer; numbered offers keep
 * theirs (@p next_offer still advances, staying a pure arrival
 * counter either way).
 *
 * @return The admissions, paired with their offers, in arrival order.
 */
inline std::vector<std::pair<Admission, const workload::OfferedJob *>>
admitOffers(Scheduler &scheduler,
            const std::vector<workload::OfferedJob> &offered,
            std::size_t next_job, std::size_t &next_offer,
            FleetTracer &tracer)
{
    std::vector<std::pair<Admission, const workload::OfferedJob *>>
        placements;
    placements.reserve(offered.size());
    for (const workload::OfferedJob &job : offered) {
        const std::size_t offer =
            job.offer != workload::kUnnumberedOffer ? job.offer
                                                    : next_offer;
        ++next_offer;
        if (tracer.wantsPlacement())
            tracer.placement(offer, scheduler.policy().candidateCosts(
                                        scheduler.cluster()));
        const auto admission = scheduler.tryAdmit(job);
        if (admission.has_value()) {
            placements.emplace_back(*admission, &job);
            tracer.admit(offer, job, scheduler.lastVerdict(),
                         next_job + placements.size() - 1);
        } else {
            tracer.shed(offer, job, scheduler.lastVerdict());
        }
    }
    return placements;
}

/**
 * Install one arbitration round's terms in a tenant's lease — the one
 * lease-rewrite path both engines share — and attribute the rewrite
 * through the tracer.
 */
inline void
writeLease(const sim::Cluster &cluster, Tenant &tenant,
           std::size_t generation, std::size_t epoch,
           const ArbitrationDecision &decision, FleetTracer &tracer)
{
    const auto load = cluster.loadOf(
        tenant.machine_index, cluster.activeOn(tenant.machine_index));
    tenant.lease.generation = generation;
    tenant.lease.epoch = epoch;
    tenant.lease.share = load.per_instance_share;
    tenant.lease.utilization = load.utilization;
    tenant.lease.pstate_cap = decision.pstate_cap[tenant.machine_index];
    tenant.lease.pause_ratio =
        decision.pause_ratio[tenant.machine_index];
    tracer.lease(tenant.job, tenant.input, tenant.machine_index,
                 tenant.lease);
}

/**
 * Fold the drained job records and accumulated epoch rows into the
 * report's aggregates: epoch means, overall QoS mean, latency
 * percentiles, and the per-tenant / per-class / per-machine tables
 * (sorted by id; machine rows cover the whole cluster). All four
 * percentile paths go through the one latencyPercentiles helper. Both
 * engines call this with report.epochs / total counters already set.
 */
inline void
finalizeReport(FleetReport &report, std::vector<JobRecord> jobs,
               const sim::Cluster &cluster)
{
    report.jobs = std::move(jobs);

    double watts_sum = 0.0, rate_sum = 0.0;
    for (const EpochStats &stats : report.epochs) {
        watts_sum += stats.watts;
        rate_sum += stats.fleet_rate;
    }
    if (!report.epochs.empty()) {
        const double n = static_cast<double>(report.epochs.size());
        report.mean_watts = watts_sum / n;
        report.mean_fleet_rate = rate_sum / n;
    }

    std::vector<double> latencies;
    latencies.reserve(report.jobs.size());
    double qos_sum = 0.0;
    std::map<std::size_t, TenantStats> tenants;
    std::map<std::size_t, std::vector<double>> tenant_latencies;
    std::vector<std::vector<double>> machine_latencies(cluster.size());
    for (const JobRecord &job : report.jobs) {
        latencies.push_back(job.latency_s);
        qos_sum += job.qos_loss;
        TenantStats &tenant = tenants[job.tenant];
        tenant.tenant = job.tenant;
        ++tenant.jobs;
        tenant.mean_qos_loss += job.qos_loss;
        tenant.mean_latency_s += job.latency_s;
        tenant_latencies[job.tenant].push_back(job.latency_s);
        if (job.machine < machine_latencies.size())
            machine_latencies[job.machine].push_back(job.latency_s);
    }
    if (!report.jobs.empty())
        report.mean_qos_loss =
            qos_sum / static_cast<double>(report.jobs.size());
    const LatencyPercentiles overall = latencyPercentiles(latencies);
    report.p50_latency_s = overall.p50;
    report.p95_latency_s = overall.p95;
    report.p99_latency_s = overall.p99;
    for (auto &[id, tenant] : tenants) {
        const double job_count = static_cast<double>(tenant.jobs);
        tenant.mean_qos_loss /= job_count;
        tenant.mean_latency_s /= job_count;
        const LatencyPercentiles tail =
            latencyPercentiles(tenant_latencies[id]);
        tenant.p50_latency_s = tail.p50;
        tenant.p95_latency_s = tail.p95;
        tenant.p99_latency_s = tail.p99;
        report.tenants.push_back(tenant);
    }

    // Per-priority-class scoreboard: latency percentiles over the
    // served jobs of each class, plus that class's shed count — every
    // class seen in either gets a row, so a class that was shed into
    // oblivion still shows up (jobs 0, shed > 0).
    std::map<std::size_t, std::vector<double>> class_latencies;
    for (const JobRecord &job : report.jobs)
        class_latencies[job.job_class].push_back(job.latency_s);
    for (std::size_t c = 0; c < report.shed_by_class.size(); ++c)
        if (report.shed_by_class[c] > 0)
            class_latencies.try_emplace(c);
    for (auto &[c, values] : class_latencies) {
        ClassStats row;
        row.job_class = c;
        row.jobs = values.size();
        row.shed = c < report.shed_by_class.size()
            ? report.shed_by_class[c]
            : 0;
        const LatencyPercentiles tail = latencyPercentiles(values);
        row.p50_latency_s = tail.p50;
        row.p95_latency_s = tail.p95;
        row.p99_latency_s = tail.p99;
        report.classes.push_back(row);
    }

    // Per-machine scoreboard: one row per cluster machine (idle
    // machines included, with zero counts), tagged with the catalog
    // class heterogeneous-fleet reports group by.
    for (std::size_t i = 0; i < cluster.size(); ++i) {
        MachineStats row;
        row.machine = i;
        row.machine_class = cluster.classOf(i);
        row.jobs = machine_latencies[i].size();
        row.shed = i < report.shed_by_machine.size()
            ? report.shed_by_machine[i]
            : 0;
        const LatencyPercentiles tail =
            latencyPercentiles(machine_latencies[i]);
        row.p50_latency_s = tail.p50;
        row.p95_latency_s = tail.p95;
        row.p99_latency_s = tail.p99;
        report.machines.push_back(row);
    }
}

} // namespace powerdial::fleet::detail

#endif // POWERDIAL_FLEET_TENANT_H
