#include "fleet/admission.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/response_model.h"
#include "fleet/metrics_hub.h"
#include "fleet/scheduler.h"
#include "sim/cluster.h"

namespace powerdial::fleet {

namespace {

/**
 * The capacity decision both policies share: the placement policy's
 * pick, overflowed through PlacementPolicy::pickAmong to the policy's
 * preference among machines with room when the pick is at the
 * queue-depth bound. An empty machine means every machine is at the
 * bound — a capacity shed.
 */
AdmissionVerdict
pickWithRoom(const AdmissionContext &context)
{
    AdmissionVerdict verdict;
    verdict.policy_pick = context.placement.pick(context.cluster);
    if (verdict.policy_pick >= context.cluster.size())
        throw std::logic_error("Scheduler: policy picked a bad machine");
    std::size_t machine = verdict.policy_pick;
    const std::size_t depth = context.queue_depth;
    if (depth != 0 && context.cluster.activeOn(machine) >= depth) {
        std::vector<std::size_t> room;
        for (std::size_t i = 0; i < context.cluster.size(); ++i)
            if (context.cluster.activeOn(i) < depth)
                room.push_back(i);
        if (room.empty()) {
            verdict.shed_cause = "capacity";
            return verdict; // Cluster full: shed.
        }
        machine = context.placement.pickAmong(context.cluster, room);
    }
    verdict.machine = machine;
    return verdict;
}

class QueueDepthAdmission final : public AdmissionPolicy
{
  public:
    std::string name() const override { return "queue-depth"; }

    AdmissionVerdict
    decide(const OfferedJob &job,
           const AdmissionContext &context) override
    {
        (void)job; // Blind: metadata never considered.
        return pickWithRoom(context);
    }
};

class PredictiveAdmission final : public AdmissionPolicy
{
  public:
    explicit PredictiveAdmission(PredictiveAdmissionOptions options)
        : options_(options), margin_(options.initial_margin)
    {
        if (options_.window == 0)
            throw std::invalid_argument(
                "PredictiveAdmission: window must be >= 1");
    }

    std::string name() const override { return "predictive-slo"; }

    AdmissionVerdict
    decide(const OfferedJob &job,
           const AdmissionContext &context) override
    {
        AdmissionVerdict verdict = pickWithRoom(context);
        if (!verdict.machine.has_value())
            return verdict; // Capacity shed, like queue-depth.
        verdict.predicted_s =
            predictLatency(context, *verdict.machine);
        verdict.margin = margin_;
        if (job.deadline_s > 0.0 && verdict.predicted_s > 0.0) {
            const double headroom = 1.0 +
                options_.class_headroom *
                    static_cast<double>(job.job_class);
            verdict.class_factor = headroom;
            if (verdict.predicted_s * margin_ * headroom >
                job.deadline_s) {
                verdict.machine.reset(); // Predicted SLO violation.
                verdict.shed_cause = "slo";
            }
        }
        return verdict;
    }

    void
    noteCompletion(double observed_s, double predicted_s) override
    {
        if (predicted_s <= 0.0 || observed_s < 0.0)
            return;
        if (observed_.size() < options_.window) {
            observed_.push_back(observed_s);
            predicted_.push_back(predicted_s);
        } else {
            observed_[next_] = observed_s;
            predicted_[next_] = predicted_s;
        }
        next_ = (next_ + 1) % options_.window;
        // Distribution-level calibration: the ratio of the window's
        // observed p95 to its predicted p95, not the p95 of per-job
        // ratios. Jobs admitted early in an arrival burst are priced
        // at pre-burst occupancy but live through the burst, so their
        // individual ratios are systematically inflated; a tail-of-
        // ratios margin ratchets up on them, then starves admission so
        // the window never refreshes. Comparing the two tails instead
        // measures how far the *distribution* of outcomes sits from
        // the distribution of promises, which is the miscalibration
        // the margin is meant to correct.
        std::vector<double> observed = observed_;
        std::vector<double> predicted = predicted_;
        std::sort(observed.begin(), observed.end());
        std::sort(predicted.begin(), predicted.end());
        const double predicted_p95 = percentileOf(predicted, 95.0);
        if (predicted_p95 <= 0.0)
            return;
        margin_ = std::clamp(percentileOf(observed, 95.0) /
                                 predicted_p95,
                             options_.min_margin, options_.max_margin);
    }

  private:
    /**
     * Predicted completion latency of one more job on @p machine: the
     * calibrated baseline stretched by the slowdown the job would run
     * under — core share after placement (against the machine's own
     * class core count), the machine's effective-speed deficit versus
     * the fleet's reference class (which folds in both the DVFS cap
     * and a sub-1.0 class speed factor), and the lease's duty-cycle
     * pause — minus whatever the controller can win back by trading
     * QoS (capped by the response model's largest Pareto speedup). On
     * a homogeneous fleet the reference speed is the machine's own
     * P-state-0 frequency times 1.0, so this prices exactly as it did
     * before machine classes existed, bit for bit.
     */
    double
    predictLatency(const AdmissionContext &context,
                   std::size_t machine) const
    {
        if (context.model == nullptr)
            return 0.0;
        const sim::Machine &m = context.cluster.machine(machine);
        const auto load = context.cluster.loadOf(
            machine, context.cluster.activeOn(machine) + 1);
        double pause = 0.0;
        if (context.decision != nullptr &&
            machine < context.decision->pause_ratio.size())
            pause = context.decision->pause_ratio[machine];
        const double slowdown = (1.0 / load.per_instance_share) *
            (context.cluster.referenceEffectiveHz() /
             (m.frequencyHz() * m.speedFactor())) *
            (1.0 + pause);
        const double catchup = std::min(
            slowdown, std::max(context.model->maxSpeedup(), 1.0));
        return context.model->baselineSeconds() * slowdown / catchup;
    }

    PredictiveAdmissionOptions options_;
    double margin_;
    std::vector<double> observed_;
    std::vector<double> predicted_;
    std::size_t next_ = 0;
};

} // namespace

AdmissionFactory
makeQueueDepthAdmission()
{
    return []() { return std::make_unique<QueueDepthAdmission>(); };
}

AdmissionFactory
makePredictiveAdmission(PredictiveAdmissionOptions options)
{
    return [options]() {
        return std::make_unique<PredictiveAdmission>(options);
    };
}

} // namespace powerdial::fleet
