/**
 * @file
 * Admission control for the fleet serving subsystem.
 *
 * The Scheduler's queue-depth bound (PR 5) sheds *blindly*: any arrival
 * that finds every machine at the bound is turned away, whether it is a
 * best-effort batch job or the fleet's highest-priority traffic, and
 * whether or not it could still have met its deadline from a queue.
 * This seam makes the shed decision a policy, parallel to the
 * PlacementPolicy seam:
 *
 *   - QueueDepthAdmission reproduces the historical behaviour exactly
 *     (shed only when no machine has room), keeping every existing
 *     golden and differential harness valid;
 *   - PredictiveAdmission uses the tenant's *calibrated response
 *     model* plus the live cluster occupancy and arbitration-lease
 *     state to estimate each arrival's completion time, and sheds only
 *     jobs whose predicted finish would violate their deadline class —
 *     with a MARCO-style feedback hook that adapts the shedding margin
 *     from the observed p95 of actual-vs-predicted latency, and
 *     class-scaled headroom so low-priority work is shed first under
 *     overload.
 *
 * Implementations must be deterministic pure functions of the context
 * plus their own serially-fed feedback (noteArbitration /
 * noteCompletion are only called from the engines' serial sections),
 * preserving the repo's bit-identical-replay discipline.
 */
#ifndef POWERDIAL_FLEET_ADMISSION_H
#define POWERDIAL_FLEET_ADMISSION_H

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "workload/traffic_mix.h"

namespace powerdial::core {
class ResponseModel;
}
namespace powerdial::sim {
class Cluster;
}

namespace powerdial::fleet {

class PlacementPolicy;
struct ArbitrationDecision;

using workload::OfferedJob;

/**
 * Sentinel OfferedJob::tenant: resolve the tenant input by the legacy
 * round-robin rule (options.tenants[job_id % size]) at tenant-creation
 * time. The count-based Server::serve(arrivals) path offers every job
 * with this sentinel, because the legacy rule depends on the *admitted*
 * job id, which is unknowable before admission decides.
 */
inline constexpr std::size_t kRoundRobinTenant =
    static_cast<std::size_t>(-1);

/**
 * What an admission policy may read when deciding: the live cluster
 * occupancy, the placement policy (admission *places* admitted jobs
 * through it, so placement stays one seam), the queue-depth bound, the
 * calibrated response model, and the latest arbitration decision
 * (per-machine DVFS caps and duty-cycle pauses — the lease terms a
 * newly admitted tenant would run under).
 */
struct AdmissionContext
{
    const sim::Cluster &cluster;
    const PlacementPolicy &placement;
    std::size_t queue_depth = 0; //!< 0 = unbounded.
    const core::ResponseModel *model = nullptr; //!< May be null.
    const ArbitrationDecision *decision = nullptr; //!< Null = none yet.
};

/** One admission decision. */
struct AdmissionVerdict
{
    /**
     * The host the placement policy chose for the job — the machine a
     * shed is charged to (Scheduler::shedByMachine), whether or not
     * the job was admitted.
     */
    std::size_t policy_pick = 0;
    /** Hosting machine; empty = shed. */
    std::optional<std::size_t> machine;
    /** Predicted completion latency, seconds (0 = no prediction). */
    double predicted_s = 0.0;
    /** Margin multiplier in force at the decision (0 = none used). */
    double margin = 0.0;
    /** Class headroom factor 1 + class_headroom * class (0 = unused). */
    double class_factor = 0.0;
    /** Why a shed was shed: "capacity" (cluster full) or "slo"
     *  (predicted deadline violation); null on admits. Static
     *  storage — safe to copy into trace records. */
    const char *shed_cause = nullptr;
};

/**
 * Decides, for each arriving job, whether to admit it (and onto which
 * machine) or shed it. The Scheduler routes every tryAdmit through
 * exactly one policy instance per serve.
 */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;

    /** Policy name for reports, e.g. "queue-depth". */
    virtual std::string name() const = 0;

    /** Decide one arrival. Must not mutate the cluster. */
    virtual AdmissionVerdict decide(const OfferedJob &job,
                                    const AdmissionContext &context) = 0;

    /**
     * An arbitration round just installed @p decision on the cluster.
     * Called serially, in virtual-time order, by both engines.
     */
    virtual void noteArbitration(const ArbitrationDecision &decision)
    {
        (void)decision;
    }

    /**
     * A job the policy admitted just completed: @p observed_s actual
     * latency against the @p predicted_s the policy returned at
     * admission (0 = it made no prediction). The feedback hook behind
     * PredictiveAdmission's adaptive margin; called serially at
     * release points, in virtual-time order, by both engines.
     */
    virtual void noteCompletion(double observed_s, double predicted_s)
    {
        (void)observed_s;
        (void)predicted_s;
    }
};

/** Mint a fresh admission policy per scheduler. */
using AdmissionFactory =
    std::function<std::unique_ptr<AdmissionPolicy>()>;

/**
 * The historical blind shedding, behind the seam: admit onto the
 * placement policy's pick, overflowing to the policy's preference
 * among machines with room when the pick is at the queue-depth bound;
 * shed only when every machine is at the bound. Job metadata (class,
 * deadline) is ignored. This is the Scheduler's default policy, and
 * the one every pre-seam golden was recorded under.
 */
AdmissionFactory makeQueueDepthAdmission();

/** PredictiveAdmission tuning. */
struct PredictiveAdmissionOptions
{
    /**
     * Multiplier on the predicted latency before the deadline test,
     * used until completion feedback accumulates. The margin then
     * adapts: it becomes the ratio of the feedback window's observed
     * p95 latency to its predicted p95 latency, so a model that
     * proves optimistic in this fleet raises the bar and one that
     * proves pessimistic lowers it (MARCO-style threshold
     * adaptation). Distribution-level on purpose: the p95 of per-job
     * ratios would ratchet up on burst-leading jobs (priced before
     * the burst, run through it) and then starve admission.
     */
    double initial_margin = 1.0;
    /** Sliding feedback window, completions (>= 1). */
    std::size_t window = 64;
    /** Bounds on the adapted margin. */
    double min_margin = 0.5;
    double max_margin = 4.0;
    /**
     * Extra per-class margin: class c is shed when predicted * margin
     * * (1 + class_headroom * c) exceeds its deadline, so lower-
     * priority classes (higher c) are turned away first as predicted
     * load approaches deadlines.
     */
    double class_headroom = 0.25;
};

/**
 * SLO-aware admission: estimate the arrival's completion time on the
 * placement policy's pick from the calibrated response model, the
 * post-placement core share, the machine's (possibly arbiter-capped)
 * frequency, and the lease's duty-cycle pause; admit unless the
 * margin-scaled prediction violates the job's deadline (deadline 0 =
 * no SLO, admit whenever there is room). Capacity sheds (no machine
 * with room) still occur exactly as under QueueDepthAdmission.
 */
AdmissionFactory
makePredictiveAdmission(PredictiveAdmissionOptions options = {});

} // namespace powerdial::fleet

#endif // POWERDIAL_FLEET_ADMISSION_H
