/**
 * @file
 * Aggregated metrics pipeline for the fleet serving subsystem.
 *
 * Every tenant session already streams per-beat events through the
 * core::RunObserver seam; the MetricsHub implements that observer
 * interface once, for the whole fleet, instead of each driver rolling
 * its own recorder. Tenants run concurrently on core::FanoutEngine
 * workers, so the hub keeps one shard per worker: a probe (the
 * per-tenant observer adapter) accumulates its tenant's beats locally
 * and commits one finished JobRecord into its worker's shard — each
 * shard is written by exactly one worker, so the fan-in is lock-free.
 * drain() merges the shards sorted by job id, which makes every
 * aggregate (fleet heart rate, total watts, per-tenant QoS loss,
 * latency percentiles) bit-identical at any thread count.
 */
#ifndef POWERDIAL_FLEET_METRICS_HUB_H
#define POWERDIAL_FLEET_METRICS_HUB_H

#include <cstddef>
#include <vector>

#include "core/run_observer.h"
#include "sim/machine.h"

namespace powerdial::fleet {

/** Everything one tenant job reported by the time it completed. */
struct JobRecord
{
    std::size_t job = 0;     //!< Fleet-wide arrival order id.
    std::size_t tenant = 0;  //!< Tenant (input stream) the job served.
    std::size_t epoch = 0;   //!< Epoch the job arrived in.
    std::size_t machine = 0; //!< Hosting machine index.
    std::size_t job_class = 0; //!< Priority class (0 = highest).
    double deadline_s = 0.0; //!< Relative deadline (0 = none).
    /** Completion latency the admission policy predicted when it
     *  admitted the job (0 = no prediction was made). */
    double predicted_s = 0.0;
    double latency_s = 0.0;  //!< Virtual seconds to completion.
    double mean_rate = 0.0;  //!< Mean sliding-window heart rate.
    double qos_loss = 0.0;   //!< Work-weighted calibrated QoS loss.
    double energy_j = 0.0;   //!< Energy of the job's machine share.
    std::size_t beats = 0;   //!< Heartbeats the job emitted.
    // Latency breakdown (see core::ControlledRun): where latency_s
    // went — service_s + queue_share_s + class_deficit_s + pause_s
    // ~= latency_s up to FP rounding.
    double service_s = 0.0;       //!< Nominal-speed, full-share work.
    double queue_share_s = 0.0;   //!< Waiting on co-tenants.
    double class_deficit_s = 0.0; //!< Running below nominal speed.
    double pause_s = 0.0;         //!< Explicit idling (gates, slack).
    /**
     * Arbitration-lease generation the job last observed (0 = it
     * never saw a lease) and how many distinct lease terms its beat
     * gate applied over its lifetime — a cross-epoch tenant that felt
     * three arbitration decisions reports lease_updates == 3.
     */
    std::size_t lease_generation = 0;
    std::size_t lease_updates = 0;
};

/**
 * Lock-free fan-in of tenant-session events into per-worker shards.
 */
class MetricsHub : public core::RunObserver
{
  public:
    /**
     * The per-tenant observer adapter: attach one probe to one tenant
     * session, then finish() it after the run to commit the job's
     * record into the probe's worker shard.
     */
    class Probe final : public core::RunObserver
    {
      public:
        void onRunStart(const core::RunStartEvent &event) override;
        void onBeat(const core::BeatEvent &event) override;
        void onRunEnd(const core::ControlledRun &run) override;

        /**
         * Commit the finished job to the hub, folding in what only
         * the caller can see: the machine the job ran on (for energy)
         * and the run's QoS estimate. Call exactly once, after the
         * session's run completed.
         */
        void finish(const sim::Machine &machine);

        /**
         * Like finish(), but commit into @p worker's shard instead of
         * the probe's minting worker. A persistent tenant's epoch
         * slices may run on a different pool worker each epoch; the
         * slice that completes the run commits into the shard of the
         * worker actually running it, keeping the fan-in lock-free.
         */
        void finishOn(std::size_t worker, const sim::Machine &machine);

        /**
         * Tag the record with the arbitration-lease terms the tenant's
         * gate just applied (called once per lease re-read).
         */
        void noteLease(std::size_t generation)
        {
            record_.lease_generation = generation;
            ++record_.lease_updates;
        }

        /** The record as accumulated so far (complete after finish). */
        const JobRecord &record() const { return record_; }

      private:
        friend class MetricsHub;
        Probe(MetricsHub &hub, std::size_t worker, JobRecord seed)
            : hub_(&hub), worker_(worker), record_(seed)
        {
        }

        MetricsHub *hub_;
        std::size_t worker_;
        JobRecord record_;
        double rate_sum_ = 0.0;
        bool done_ = false;
    };

    /** @param workers Shard count; one per pool worker (>= 1). */
    explicit MetricsHub(std::size_t workers);

    /**
     * Mint the probe for one tenant job about to run on @p worker.
     * Identity fields (job, tenant, epoch, machine) are carried in
     * @p seed.
     */
    Probe probe(std::size_t worker, const JobRecord &seed);

    /** Records committed so far (across all shards). */
    std::size_t committed() const;

    /**
     * Merge and clear all shards, returning the records sorted by job
     * id — a deterministic order regardless of which workers ran
     * which tenants. Call from the coordinating thread only, with no
     * tenant in flight.
     */
    std::vector<JobRecord> drain();

    // One hub can also observe a single session directly (it is a
    // RunObserver); events land in shard 0 as job 0. The fleet path
    // uses probes instead.
    void onRunStart(const core::RunStartEvent &event) override;
    void onBeat(const core::BeatEvent &event) override;
    void onRunEnd(const core::ControlledRun &run) override;

  private:
    void commit(std::size_t worker, const JobRecord &record);

    std::vector<std::vector<JobRecord>> shards_;
    Probe self_probe_;
};

/**
 * Nearest-rank percentile of @p sorted (ascending) values; p in
 * [0, 100]. Returns 0 for an empty vector.
 */
double percentileOf(const std::vector<double> &sorted, double p);

/** The standard latency summary every report row carries. */
struct LatencyPercentiles
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Sort @p values in place and take the p50/p95/p99 nearest-rank
 * percentiles — the one aggregation the per-machine, per-tenant, and
 * per-class report paths all share, kept here so their tails can
 * never drift apart numerically.
 */
LatencyPercentiles latencyPercentiles(std::vector<double> &values);

} // namespace powerdial::fleet

#endif // POWERDIAL_FLEET_METRICS_HUB_H
