/**
 * @file
 * Processor frequency (P-state) table for the simulated machine.
 *
 * Models the DVFS capability of the paper's experimental platform (Dell
 * PowerEdge R410, Intel Xeon E5530): seven power states with clock
 * frequencies from 2.4 GHz down to 1.6 GHz (paper section 5.1).
 */
#ifndef POWERDIAL_SIM_FREQUENCY_H
#define POWERDIAL_SIM_FREQUENCY_H

#include <cstddef>
#include <vector>

namespace powerdial::sim {

/** One gigahertz, in hertz. */
inline constexpr double kGHz = 1e9;

/**
 * An immutable table of available clock frequencies (P-states), ordered
 * from the highest-performance state (index 0) to the lowest.
 */
class FrequencyScale
{
  public:
    /**
     * Build a scale from explicit frequencies in Hz.
     *
     * @param freqs_hz Frequencies, highest first. Must be non-empty and
     *                 strictly decreasing.
     */
    explicit FrequencyScale(std::vector<double> freqs_hz);

    /**
     * The seven-state 2.4 GHz .. 1.6 GHz scale of the paper's Xeon E5530
     * (evenly spaced, matching the frequency axis of Figure 6).
     */
    static FrequencyScale xeonE5530();

    /** Number of P-states. */
    std::size_t states() const { return freqs_hz_.size(); }

    /** Frequency of P-state @p state in Hz. Throws on out-of-range. */
    double frequencyHz(std::size_t state) const;

    /** Highest available frequency (P-state 0), in Hz. */
    double maxHz() const { return freqs_hz_.front(); }

    /** Lowest available frequency (deepest P-state), in Hz. */
    double minHz() const { return freqs_hz_.back(); }

    /** Index of the deepest (slowest) P-state. */
    std::size_t lowestState() const { return freqs_hz_.size() - 1; }

    /**
     * The P-state whose frequency is closest to @p hz.
     * Used by the DVFS governor to translate a requested cap into a state.
     */
    std::size_t closestState(double hz) const;

    /** All frequencies, highest first. */
    const std::vector<double> &frequencies() const { return freqs_hz_; }

  private:
    std::vector<double> freqs_hz_;
};

} // namespace powerdial::sim

#endif // POWERDIAL_SIM_FREQUENCY_H
