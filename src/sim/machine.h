/**
 * @file
 * The simulated server machine.
 *
 * Stands in for the paper's Dell PowerEdge R410 (2x quad-core Xeon E5530,
 * seven DVFS states, cpufrequtils software frequency control). Application
 * work is expressed in *cycles*; the machine converts cycles to virtual
 * seconds at its current frequency and integrates full-system energy as
 * it goes. Dynamic knobs change the number of cycles an application needs
 * (work); DVFS changes how fast cycles retire (capacity). Those are the
 * two axes every experiment in the paper manipulates.
 */
#ifndef POWERDIAL_SIM_MACHINE_H
#define POWERDIAL_SIM_MACHINE_H

#include <cstddef>
#include <vector>

#include "sim/frequency.h"
#include "sim/power_model.h"
#include "sim/virtual_clock.h"

namespace powerdial::sim {

/** A contiguous span of virtual time at constant power draw. */
struct PowerSegment
{
    double start_s;  //!< Segment start, virtual seconds.
    double end_s;    //!< Segment end, virtual seconds.
    double watts;    //!< Constant full-system power during the segment.
};

/**
 * A single simulated server with DVFS, a power model, and an energy log.
 *
 * The machine supports a configurable number of hardware contexts
 * (cores). When more runnable instances than cores share the machine the
 * per-instance throughput degrades proportionally; this is how the
 * consolidation experiments (paper section 5.5) oversubscribe a machine.
 */
class Machine
{
  public:
    struct Config
    {
        FrequencyScale scale = FrequencyScale::xeonE5530();
        PowerModelParams power{};
        /** Hardware contexts (paper machines are dual quad-core). */
        std::size_t cores = 8;
        /**
         * Relative per-cycle throughput of this machine class against
         * the fleet's reference class (> 0). Models microarchitectural
         * asymmetry beyond the clock — a big.LITTLE little core at the
         * same frequency retires fewer instructions per cycle, so its
         * speed factor is < 1. Work cycles stretch by 1/speed_factor;
         * power accounting is untouched (the power tables already
         * describe the class). 1.0 (the default) reproduces the
         * historical behaviour bit for bit.
         */
        double speed_factor = 1.0;
    };

    Machine() : Machine(Config{}) {}
    explicit Machine(const Config &config);

    /** Current virtual time in seconds. */
    double now() const { return clock_.now(); }

    /** Current P-state (0 = fastest). */
    std::size_t pstate() const { return pstate_; }

    /** Current clock frequency in Hz. */
    double frequencyHz() const { return scale_.frequencyHz(pstate_); }

    /** The machine's frequency table. */
    const FrequencyScale &scale() const { return scale_; }

    /** The machine's power model. */
    const PowerModel &powerModel() const { return power_; }

    /** Number of hardware contexts. */
    std::size_t cores() const { return cores_; }

    /** Relative per-cycle throughput of this machine class (> 0). */
    double speedFactor() const { return speed_factor_; }

    /**
     * Effective cycle-retirement rate at the current P-state:
     * frequency scaled by the class speed factor. The rate work
     * actually proceeds at (before core sharing).
     */
    double effectiveHz() const { return frequencyHz() * speed_factor_; }

    /**
     * Set the P-state (DVFS actuation, like cpufrequtils).
     * Takes effect for all subsequent work. Requests faster than the
     * current frequency cap (see setPStateCap) are clamped to the cap.
     */
    void setPState(std::size_t state);

    /**
     * Cap the machine's frequency at that of P-state @p state: the
     * effective P-state index is always >= @p state from now on. The
     * current P-state is lowered (slowed) immediately if it violates
     * the new cap, and later setPState() requests clamp against it.
     * Pass 0 to remove the cap. This is the per-machine actuation
     * surface of a cluster-wide power arbiter (fleet::PowerArbiter),
     * settable mid-run between control epochs.
     */
    void setPStateCap(std::size_t state);

    /** Current frequency cap as a P-state index (0 = uncapped). */
    std::size_t pstateCap() const { return pstate_cap_; }

    /**
     * Execute @p cycles of work on one context and advance virtual time.
     * The work proceeds at the current context share and is accounted at
     * the current machine-wide utilisation.
     *
     * @param cycles Work to retire, in clock cycles (>= 0).
     * @return Virtual seconds consumed.
     */
    double execute(double cycles);

    /**
     * Set the fraction of one context's throughput available to the
     * running work (1.0 = dedicated core; 0.5 = core shared two ways).
     * Oversubscribed machines in the consolidation experiments give each
     * instance a share of cores/instances. Must be in (0, 1].
     */
    void setShare(double share);

    /** Current context share. */
    double share() const { return share_; }

    /**
     * Set the machine-wide utilisation used for power accounting while
     * work executes, in [0, 1]; a negative value restores the default
     * (one busy core out of cores()).
     */
    void setUtilization(double utilization);

    /** Current accounting utilisation (negative = automatic). */
    double utilization() const { return utilization_; }

    /** Sit idle for @p dt virtual seconds, drawing idle power. */
    void idleFor(double dt);

    /** Sit idle until absolute virtual time @p t (no-op if past). */
    void idleUntil(double t);

    /** Total energy consumed so far, joules. */
    double energyJoules() const { return energy_j_; }

    /** Mean power between virtual times @p t0 and @p t1, watts. */
    double meanWatts(double t0, double t1) const;

    /** Mean power over the whole history, watts. */
    double meanWatts() const { return meanWatts(0.0, now()); }

    /**
     * The full constant-power segment log (WattsUp-style trace source).
     * Adjacent segments at equal power are coalesced.
     */
    const std::vector<PowerSegment> &powerTrace() const { return trace_; }

  private:
    /** Record @p dt seconds at @p watts, integrating energy. */
    void account(double dt, double watts);

    FrequencyScale scale_;
    PowerModel power_;
    std::size_t cores_;
    double speed_factor_ = 1.0;
    std::size_t pstate_ = 0;
    std::size_t pstate_cap_ = 0;
    double share_ = 1.0;
    double utilization_ = -1.0;
    VirtualClock clock_;
    double energy_j_ = 0.0;
    std::vector<PowerSegment> trace_;
};

} // namespace powerdial::sim

#endif // POWERDIAL_SIM_MACHINE_H
