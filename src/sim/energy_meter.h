/**
 * @file
 * WattsUp-style power sampler over a machine's power trace.
 *
 * The paper samples full-system power at 1-second intervals with a
 * WattsUp device (section 5.1) and reports the mean of those samples.
 * This meter reproduces that measurement procedure against the simulated
 * machine's piecewise-constant power trace.
 */
#ifndef POWERDIAL_SIM_ENERGY_METER_H
#define POWERDIAL_SIM_ENERGY_METER_H

#include <vector>

#include "sim/machine.h"

namespace powerdial::sim {

/** One power sample: time and instantaneous-average power over the bin. */
struct PowerSample
{
    double time_s;  //!< End of the sampling bin, virtual seconds.
    double watts;   //!< Mean power over the bin.
};

/**
 * Samples a machine's power trace at a fixed interval, like the paper's
 * WattsUp meter.
 */
class EnergyMeter
{
  public:
    /**
     * @param interval_s Sampling interval in virtual seconds (paper: 1 s).
     */
    explicit EnergyMeter(double interval_s = 1.0);

    /**
     * Sample machine power from virtual time @p t0 to @p t1.
     * Each sample is the mean power over one interval-wide bin.
     */
    std::vector<PowerSample> sample(const Machine &machine, double t0,
                                    double t1) const;

    /** Sample the machine's entire history. */
    std::vector<PowerSample>
    sample(const Machine &machine) const
    {
        return sample(machine, 0.0, machine.now());
    }

    /** Mean of the samples (the statistic Figures 6 and 8 report). */
    static double meanWatts(const std::vector<PowerSample> &samples);

    double intervalSeconds() const { return interval_s_; }

  private:
    double interval_s_;
};

} // namespace powerdial::sim

#endif // POWERDIAL_SIM_ENERGY_METER_H
