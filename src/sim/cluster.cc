#include "sim/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace powerdial::sim {

Cluster::Cluster(std::size_t machines, const Machine::Config &config)
    : catalog_(MachineCatalog::homogeneous(config)),
      class_of_(machines, 0)
{
    if (machines == 0)
        throw std::invalid_argument("Cluster: need at least one machine");
    provision();
}

Cluster::Cluster(const MachineCatalog &catalog,
                 const std::vector<std::size_t> &class_mix)
    : catalog_(catalog)
{
    if (catalog_.empty())
        throw std::invalid_argument("Cluster: empty machine catalog");
    if (class_mix.size() != catalog_.size())
        throw std::invalid_argument(
            "Cluster: class mix must be parallel to the catalog");
    for (std::size_t c = 0; c < class_mix.size(); ++c)
        for (std::size_t i = 0; i < class_mix[c]; ++i)
            class_of_.push_back(c);
    if (class_of_.empty())
        throw std::invalid_argument("Cluster: need at least one machine");
    provision();
}

void
Cluster::provision()
{
    machines_.reserve(class_of_.size());
    for (const std::size_t c : class_of_)
        machines_.emplace_back(catalog_.at(c).config);
    active_.assign(class_of_.size(), 0);
    heterogeneous_ = false;
    for (const std::size_t c : class_of_)
        if (c != class_of_.front())
            heterogeneous_ = true;
    reference_effective_hz_ = 0.0;
    for (const Machine &m : machines_)
        reference_effective_hz_ =
            std::max(reference_effective_hz_,
                     m.scale().maxHz() * m.speedFactor());
}

void
Cluster::place(std::size_t i)
{
    ++active_.at(i);
}

void
Cluster::release(std::size_t i)
{
    if (active_.at(i) == 0)
        throw std::logic_error("Cluster: release on an idle machine");
    --active_[i];
}

std::size_t
Cluster::totalActive() const
{
    std::size_t total = 0;
    for (const std::size_t count : active_)
        total += count;
    return total;
}

void
Cluster::clearPlacement()
{
    std::fill(active_.begin(), active_.end(), 0);
}

double
Cluster::dynamicWatts() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < machines_.size(); ++i) {
        const Machine &m = machines_[i];
        total += m.powerModel().watts(
            m.frequencyHz(), loadOf(i, active_[i]).utilization);
    }
    return total;
}

std::size_t
Cluster::totalCores() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < machines_.size(); ++i)
        total += coresOf(i);
    return total;
}

std::vector<std::size_t>
Cluster::balance(std::size_t instances) const
{
    const std::size_t n = machines_.size();
    std::vector<std::size_t> placement(n, instances / n);
    // Distribute the remainder one instance at a time, least-loaded first.
    for (std::size_t i = 0; i < instances % n; ++i)
        ++placement[i];
    return placement;
}

MachineLoad
Cluster::loadForCores(std::size_t cores, std::size_t instances)
{
    MachineLoad load{};
    load.instances = instances;
    if (instances == 0) {
        load.utilization = 0.0;
        load.per_instance_share = 1.0;
        load.required_speedup = 1.0;
        return load;
    }
    const double c = static_cast<double>(cores);
    const double m = static_cast<double>(instances);
    load.utilization = std::min(1.0, m / c);
    load.per_instance_share = std::min(1.0, c / m);
    load.required_speedup = std::max(1.0, m / c);
    return load;
}

MachineLoad
Cluster::loadOf(std::size_t instances) const
{
    return loadForCores(catalog_.at(0).config.cores, instances);
}

MachineLoad
Cluster::loadOf(std::size_t machine, std::size_t instances) const
{
    return loadForCores(coresOf(machine), instances);
}

double
Cluster::steadyStateWatts(const std::vector<std::size_t> &placement,
                          std::size_t pstate) const
{
    if (placement.size() != machines_.size())
        throw std::invalid_argument("Cluster: placement size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < machines_.size(); ++i) {
        const Machine &m = machines_[i];
        const std::size_t state =
            std::min(pstate, m.scale().lowestState());
        total += m.powerModel().watts(
            m.scale().frequencyHz(state),
            loadOf(i, placement[i]).utilization);
    }
    return total;
}

double
Cluster::maxRequiredSpeedup(const std::vector<std::size_t> &placement) const
{
    double worst = 1.0;
    for (std::size_t i = 0; i < placement.size(); ++i)
        worst = std::max(worst, loadOf(i, placement[i]).required_speedup);
    return worst;
}

double
Cluster::minInstanceShare(const std::vector<std::size_t> &placement) const
{
    return 1.0 / maxRequiredSpeedup(placement);
}

} // namespace powerdial::sim
