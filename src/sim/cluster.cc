#include "sim/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace powerdial::sim {

Cluster::Cluster(std::size_t machines, const Machine::Config &config)
    : config_(config), active_(machines, 0)
{
    if (machines == 0)
        throw std::invalid_argument("Cluster: need at least one machine");
    machines_.reserve(machines);
    for (std::size_t i = 0; i < machines; ++i)
        machines_.emplace_back(config);
}

void
Cluster::place(std::size_t i)
{
    ++active_.at(i);
}

void
Cluster::release(std::size_t i)
{
    if (active_.at(i) == 0)
        throw std::logic_error("Cluster: release on an idle machine");
    --active_[i];
}

std::size_t
Cluster::totalActive() const
{
    std::size_t total = 0;
    for (const std::size_t count : active_)
        total += count;
    return total;
}

void
Cluster::clearPlacement()
{
    std::fill(active_.begin(), active_.end(), 0);
}

double
Cluster::dynamicWatts() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < machines_.size(); ++i) {
        const Machine &m = machines_[i];
        total += m.powerModel().watts(m.frequencyHz(),
                                      loadOf(active_[i]).utilization);
    }
    return total;
}

std::size_t
Cluster::totalCores() const
{
    return machines_.size() * config_.cores;
}

std::vector<std::size_t>
Cluster::balance(std::size_t instances) const
{
    const std::size_t n = machines_.size();
    std::vector<std::size_t> placement(n, instances / n);
    // Distribute the remainder one instance at a time, least-loaded first.
    for (std::size_t i = 0; i < instances % n; ++i)
        ++placement[i];
    return placement;
}

MachineLoad
Cluster::loadOf(std::size_t instances) const
{
    MachineLoad load{};
    load.instances = instances;
    if (instances == 0) {
        load.utilization = 0.0;
        load.per_instance_share = 1.0;
        load.required_speedup = 1.0;
        return load;
    }
    const double cores = static_cast<double>(config_.cores);
    const double m = static_cast<double>(instances);
    load.utilization = std::min(1.0, m / cores);
    load.per_instance_share = std::min(1.0, cores / m);
    load.required_speedup = std::max(1.0, m / cores);
    return load;
}

double
Cluster::steadyStateWatts(const std::vector<std::size_t> &placement,
                          std::size_t pstate) const
{
    if (placement.size() != machines_.size())
        throw std::invalid_argument("Cluster: placement size mismatch");
    const PowerModel &pm = machines_.front().powerModel();
    const double freq = machines_.front().scale().frequencyHz(pstate);
    double total = 0.0;
    for (std::size_t count : placement)
        total += pm.watts(freq, loadOf(count).utilization);
    return total;
}

double
Cluster::maxRequiredSpeedup(const std::vector<std::size_t> &placement) const
{
    double worst = 1.0;
    for (std::size_t count : placement)
        worst = std::max(worst, loadOf(count).required_speedup);
    return worst;
}

double
Cluster::minInstanceShare(const std::vector<std::size_t> &placement) const
{
    return 1.0 / maxRequiredSpeedup(placement);
}

} // namespace powerdial::sim
