/**
 * @file
 * Deterministic virtual time source for the simulated platform.
 *
 * All experiment time in this repository is virtual: applications cost
 * their work in cycles, the machine converts cycles to seconds at its
 * current frequency, and this clock accumulates the result. Using virtual
 * time makes every experiment deterministic and lets the power-cap and
 * consolidation scenarios (paper sections 5.4, 5.5) run in milliseconds
 * of real time.
 */
#ifndef POWERDIAL_SIM_VIRTUAL_CLOCK_H
#define POWERDIAL_SIM_VIRTUAL_CLOCK_H

#include <stdexcept>

namespace powerdial::sim {

/** A monotonically advancing virtual clock measured in seconds. */
class VirtualClock
{
  public:
    VirtualClock() = default;

    /** Current virtual time in seconds since construction. */
    double now() const { return now_s_; }

    /**
     * Advance the clock by @p dt seconds.
     * @throws std::invalid_argument if @p dt is negative.
     */
    void
    advance(double dt)
    {
        if (dt < 0.0)
            throw std::invalid_argument("VirtualClock: negative advance");
        now_s_ += dt;
    }

    /**
     * Advance the clock to absolute time @p t (no-op if in the past).
     * @return true when the clock moved, false when @p t was not in
     *         the future — the signal the event-driven fleet engine
     *         uses to tell "a later event time" (tenants must advance)
     *         from "another event at the current time" apart without
     *         re-comparing doubles at every dispatch site.
     */
    bool
    advanceTo(double t)
    {
        if (t <= now_s_)
            return false;
        now_s_ = t;
        return true;
    }

    /** Rewind to time zero (reusing one clock across experiments). */
    void reset() { now_s_ = 0.0; }

  private:
    double now_s_ = 0.0;
};

} // namespace powerdial::sim

#endif // POWERDIAL_SIM_VIRTUAL_CLOCK_H
