/**
 * @file
 * A small cluster of simulated machines with a proportional load balancer.
 *
 * Models the provisioning experiments of paper section 5.5: a baseline
 * system of four 8-core machines (peak load 32 concurrent application
 * instances) versus a consolidated system with fewer machines in which
 * PowerDial trades QoS for throughput. "This system load balances all
 * jobs proportionally across available machines. Machines without jobs
 * are idle but not powered off."
 *
 * Clusters may be heterogeneous: provisioned from a MachineCatalog and
 * a class mix, every machine carries the frequency/power tables, core
 * count, and speed factor of its class, and the per-machine accessors
 * (classOf, configOf, the two-argument loadOf) expose the class-aware
 * view the fleet scheduler and power arbiter place and budget against.
 * A cluster built from the legacy homogeneous constructor — or from a
 * one-class catalog — behaves bit-identically to the pre-catalog code.
 */
#ifndef POWERDIAL_SIM_CLUSTER_H
#define POWERDIAL_SIM_CLUSTER_H

#include <cstddef>
#include <vector>

#include "sim/machine.h"
#include "sim/machine_catalog.h"

namespace powerdial::sim {

/** Steady-state operating point of one machine under a given load. */
struct MachineLoad
{
    std::size_t instances;    //!< Concurrent application instances.
    double utilization;       //!< min(1, instances / cores).
    double per_instance_share;//!< Core share each instance receives.
    double required_speedup;  //!< Knob speedup needed to hold baseline
                              //!< per-instance performance (>= 1).
};

/**
 * A cluster with proportional (least-loaded) job placement —
 * homogeneous by default, heterogeneous when provisioned from a
 * machine catalog.
 */
class Cluster
{
  public:
    /**
     * Homogeneous cluster.
     * @param machines Number of machines.
     * @param config   Per-machine configuration (all identical).
     */
    Cluster(std::size_t machines, const Machine::Config &config);

    /**
     * Heterogeneous cluster: @p class_mix[c] machines of catalog class
     * c, in class order (class 0's machines take the lowest indices).
     * The mix must be parallel to the catalog and provision at least
     * one machine. A one-class mix is exactly the homogeneous cluster
     * of that class's configuration.
     */
    Cluster(const MachineCatalog &catalog,
            const std::vector<std::size_t> &class_mix);

    std::size_t size() const { return machines_.size(); }

    Machine &machine(std::size_t i) { return machines_.at(i); }
    const Machine &machine(std::size_t i) const { return machines_.at(i); }

    /** The catalog the fleet was provisioned from (one-class for the
     *  homogeneous constructor). */
    const MachineCatalog &catalog() const { return catalog_; }

    /** Catalog class index of machine @p i. */
    std::size_t classOf(std::size_t i) const { return class_of_.at(i); }

    /** The class configuration machine @p i was provisioned with. */
    const Machine::Config &configOf(std::size_t i) const
    {
        return catalog_.at(class_of_.at(i)).config;
    }

    /**
     * True when the fleet mixes two or more catalog classes — the
     * signal class-aware code paths branch on, so single-class fleets
     * keep the legacy arithmetic (and its exact rounding) untouched.
     */
    bool heterogeneous() const { return heterogeneous_; }

    /**
     * The fastest effective cycle rate any provisioned machine reaches
     * at P-state 0 (maxHz * speed_factor, maximised over machines) —
     * the reference speed placement and admission price slowdowns
     * against. Equals maxHz * 1.0 (an IEEE identity) on a legacy
     * homogeneous cluster.
     */
    double referenceEffectiveHz() const
    {
        return reference_effective_hz_;
    }

    /** Hardware contexts of machine @p i. */
    std::size_t coresOf(std::size_t i) const
    {
        return configOf(i).cores;
    }

    /** Total hardware contexts across the cluster. */
    std::size_t totalCores() const;

    /** Peak concurrent instances the cluster is provisioned for. */
    std::size_t peakInstances() const { return totalCores(); }

    /**
     * Proportionally balance @p instances across the machines
     * (least-loaded placement; equivalent to an even split — placing
     * the instances one at a time on the currently least-loaded
     * machine, lowest index first on ties, yields exactly this
     * distribution; tests/test_cluster.cc pins the equivalence).
     * Class-blind: the analytic consolidation experiments it models
     * assume a homogeneous fleet.
     * @return per-machine instance counts, size() entries.
     */
    std::vector<std::size_t> balance(std::size_t instances) const;

    // ----- Dynamic placement state (fleet serving) -------------------
    //
    // balance() computes an analytic steady-state split; the fleet
    // scheduler instead places and releases jobs incrementally as they
    // arrive and complete. The cluster tracks that occupancy here so
    // placement policies and the power arbiter can read a live view.

    /** Record one more active instance on machine @p i. */
    void place(std::size_t i);

    /** Record the completion of an instance on machine @p i. */
    void release(std::size_t i);

    /** Active instances currently placed on machine @p i. */
    std::size_t activeOn(std::size_t i) const { return active_.at(i); }

    /** Active instances across the cluster. */
    std::size_t totalActive() const;

    /** Per-machine active instance counts (size() entries). */
    const std::vector<std::size_t> &activeCounts() const
    {
        return active_;
    }

    /** Reset the dynamic placement state to an empty cluster. */
    void clearPlacement();

    /**
     * Total cluster power at the *current* dynamic state: every
     * machine accounted at its own frequency (which reflects any
     * per-machine P-state cap the arbiter installed) and at the
     * utilisation implied by its active instance count. Idle machines
     * draw idle power (not powered off), like steadyStateWatts().
     */
    double dynamicWatts() const;

    /**
     * The steady-state operating point of the *class-0* machine with
     * @p instances — the homogeneous analytic view the provisioning
     * experiments use. Class-aware callers (scheduler, arbiter,
     * admission) use the two-argument overload instead.
     */
    MachineLoad loadOf(std::size_t instances) const;

    /**
     * The steady-state operating point of machine @p machine hosting
     * @p instances, against that machine's own class core count.
     * Identical to the one-argument form on a homogeneous cluster.
     */
    MachineLoad loadOf(std::size_t machine, std::size_t instances) const;

    /**
     * Steady-state total cluster power at a given placement, watts.
     * Machines without jobs idle at idle power (not powered off).
     * Each machine is accounted with its own class power model and
     * frequency table; a P-state deeper than a class provides clamps
     * to that class's slowest state.
     *
     * @param placement Per-machine instance counts (from balance()).
     * @param pstate    Common P-state of all machines.
     */
    double steadyStateWatts(const std::vector<std::size_t> &placement,
                            std::size_t pstate = 0) const;

    /**
     * Convenience: steady-state power at @p instances concurrent
     * instances after proportional balancing.
     */
    double
    steadyStateWatts(std::size_t instances, std::size_t pstate = 0) const
    {
        return steadyStateWatts(balance(instances), pstate);
    }

    /**
     * Largest per-machine required speedup across a placement —
     * what PowerDial must deliver for the consolidated system to hold
     * baseline per-instance performance.
     */
    double maxRequiredSpeedup(const std::vector<std::size_t> &placement)
        const;

    /**
     * Smallest per-instance core share across a placement — the share
     * each instance receives on the most-loaded machine (the inverse
     * of maxRequiredSpeedup). This is the share a consolidation
     * replay pins on its simulated machine (core::replayConsolidation).
     */
    double minInstanceShare(const std::vector<std::size_t> &placement)
        const;

  private:
    /** Shared constructor tail: provision machines_ from class_of_. */
    void provision();

    static MachineLoad loadForCores(std::size_t cores,
                                    std::size_t instances);

    std::vector<Machine> machines_;
    MachineCatalog catalog_;
    std::vector<std::size_t> class_of_;
    bool heterogeneous_ = false;
    double reference_effective_hz_ = 0.0;
    std::vector<std::size_t> active_;
};

} // namespace powerdial::sim

#endif // POWERDIAL_SIM_CLUSTER_H
