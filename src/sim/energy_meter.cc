#include "sim/energy_meter.h"

#include <stdexcept>

namespace powerdial::sim {

EnergyMeter::EnergyMeter(double interval_s) : interval_s_(interval_s)
{
    if (interval_s_ <= 0.0)
        throw std::invalid_argument("EnergyMeter: non-positive interval");
}

std::vector<PowerSample>
EnergyMeter::sample(const Machine &machine, double t0, double t1) const
{
    std::vector<PowerSample> out;
    for (double t = t0; t + interval_s_ <= t1 + 1e-12; t += interval_s_) {
        const double end = t + interval_s_;
        out.push_back({end, machine.meanWatts(t, end)});
    }
    return out;
}

double
EnergyMeter::meanWatts(const std::vector<PowerSample> &samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : samples)
        sum += s.watts;
    return sum / static_cast<double>(samples.size());
}

} // namespace powerdial::sim
