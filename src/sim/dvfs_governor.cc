#include "sim/dvfs_governor.h"

#include <stdexcept>

namespace powerdial::sim {

void
DvfsGovernor::schedule(double time_s, std::size_t pstate)
{
    if (!events_.empty() && time_s < events_.back().time_s)
        throw std::invalid_argument("DvfsGovernor: out-of-order event");
    events_.push_back({time_s, pstate});
}

DvfsGovernor
DvfsGovernor::powerCap(const Machine &machine, double impose_s, double lift_s)
{
    if (lift_s <= impose_s)
        throw std::invalid_argument("DvfsGovernor: lift before impose");
    DvfsGovernor gov;
    gov.schedule(impose_s, machine.scale().lowestState());
    gov.schedule(lift_s, 0);
    return gov;
}

bool
DvfsGovernor::poll(Machine &machine)
{
    bool changed = false;
    while (next_ < events_.size() &&
           machine.now() >= origin_s_ + events_[next_].time_s) {
        if (machine.pstate() != events_[next_].pstate) {
            machine.setPState(events_[next_].pstate);
            changed = true;
        }
        ++next_;
    }
    return changed;
}

} // namespace powerdial::sim
