#include "sim/machine_catalog.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace powerdial::sim {

MachineCatalog::MachineCatalog(std::vector<MachineClass> classes)
    : classes_(std::move(classes))
{
    if (classes_.empty())
        throw std::invalid_argument(
            "MachineCatalog: need at least one class");
    for (std::size_t i = 0; i < classes_.size(); ++i) {
        const MachineClass &c = classes_[i];
        if (c.name.empty())
            throw std::invalid_argument(
                "MachineCatalog: class names must be non-empty");
        if (c.config.cores == 0)
            throw std::invalid_argument(
                "MachineCatalog: class needs at least one core");
        if (c.config.speed_factor <= 0.0)
            throw std::invalid_argument(
                "MachineCatalog: class speed factor must be > 0");
        for (std::size_t j = 0; j < i; ++j)
            if (classes_[j].name == c.name)
                throw std::invalid_argument(
                    "MachineCatalog: duplicate class name \"" +
                    c.name + "\"");
    }
}

MachineCatalog
MachineCatalog::homogeneous(const Machine::Config &config,
                            std::string name)
{
    return MachineCatalog({{std::move(name), config}});
}

MachineCatalog
MachineCatalog::bigLittle()
{
    MachineClass big;
    big.name = "big";
    big.config = Machine::Config{}; // The paper's Xeon E5530 server.

    MachineClass little;
    little.name = "little";
    little.config.scale = FrequencyScale(
        {1.6 * kGHz, 1.4 * kGHz, 1.2 * kGHz, 1.0 * kGHz, 0.8 * kGHz});
    little.config.power.idle_watts = 40.0;
    little.config.power.peak_watts = 95.0;
    little.config.power.v_min = 0.80;
    little.config.power.v_max = 1.00;
    little.config.power.f_min_hz = 0.8 * kGHz;
    little.config.power.f_max_hz = 1.6 * kGHz;
    little.config.cores = 4;
    little.config.speed_factor = 0.6;
    return MachineCatalog({std::move(big), std::move(little)});
}

std::size_t
MachineCatalog::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < classes_.size(); ++i)
        if (classes_[i].name == name)
            return i;
    throw std::invalid_argument("MachineCatalog: no class named \"" +
                                name + "\"");
}

double
MachineCatalog::referenceEffectiveHz() const
{
    double best = 0.0;
    for (const MachineClass &c : classes_)
        best = std::max(best,
                        c.config.scale.maxHz() * c.config.speed_factor);
    return best;
}

} // namespace powerdial::sim
