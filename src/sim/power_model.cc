#include "sim/power_model.h"

#include <algorithm>
#include <stdexcept>

namespace powerdial::sim {

PowerModel::PowerModel(const PowerModelParams &params) : params_(params)
{
    if (params_.idle_watts < 0.0 || params_.peak_watts <= params_.idle_watts)
        throw std::invalid_argument("PowerModel: need 0 <= idle < peak");
    if (params_.f_min_hz <= 0.0 || params_.f_max_hz <= params_.f_min_hz)
        throw std::invalid_argument("PowerModel: need 0 < f_min < f_max");
    if (params_.v_min <= 0.0 || params_.v_max < params_.v_min)
        throw std::invalid_argument("PowerModel: need 0 < v_min <= v_max");
    dyn_norm_ = params_.f_max_hz * params_.v_max * params_.v_max;
}

double
PowerModel::voltage(double freq_hz) const
{
    const double f = std::clamp(freq_hz, params_.f_min_hz, params_.f_max_hz);
    const double t =
        (f - params_.f_min_hz) / (params_.f_max_hz - params_.f_min_hz);
    return params_.v_min + t * (params_.v_max - params_.v_min);
}

double
PowerModel::watts(double freq_hz, double utilization) const
{
    const double u = std::clamp(utilization, 0.0, 1.0);
    const double v = voltage(freq_hz);
    const double dyn_frac = (freq_hz * v * v) / dyn_norm_;
    const double dyn_max = params_.peak_watts - params_.idle_watts;
    return params_.idle_watts + u * dyn_frac * dyn_max;
}

} // namespace powerdial::sim
