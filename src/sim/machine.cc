#include "sim/machine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerdial::sim {

Machine::Machine(const Config &config)
    : scale_(config.scale), power_(config.power), cores_(config.cores),
      speed_factor_(config.speed_factor)
{
    if (cores_ == 0)
        throw std::invalid_argument("Machine: need at least one core");
    if (speed_factor_ <= 0.0)
        throw std::invalid_argument(
            "Machine: speed factor must be > 0");
}

void
Machine::setPState(std::size_t state)
{
    if (state >= scale_.states())
        throw std::out_of_range("Machine: bad P-state");
    pstate_ = std::max(state, pstate_cap_);
}

void
Machine::setPStateCap(std::size_t state)
{
    if (state >= scale_.states())
        throw std::out_of_range("Machine: bad P-state cap");
    pstate_cap_ = state;
    if (pstate_ < pstate_cap_)
        pstate_ = pstate_cap_;
}

void
Machine::account(double dt, double watts)
{
    if (dt <= 0.0)
        return;
    const double t0 = clock_.now();
    clock_.advance(dt);
    energy_j_ += watts * dt;
    if (!trace_.empty() && trace_.back().watts == watts &&
        trace_.back().end_s == t0) {
        trace_.back().end_s = clock_.now();
    } else {
        trace_.push_back({t0, clock_.now(), watts});
    }
}

void
Machine::setShare(double share)
{
    if (share <= 0.0 || share > 1.0)
        throw std::invalid_argument("Machine: share must be in (0, 1]");
    share_ = share;
}

void
Machine::setUtilization(double utilization)
{
    utilization_ = utilization < 0.0
        ? -1.0
        : std::clamp(utilization, 0.0, 1.0);
}

double
Machine::execute(double cycles)
{
    if (cycles < 0.0)
        throw std::invalid_argument("Machine: negative work");
    if (cycles == 0.0)
        return 0.0;
    const double util = utilization_ >= 0.0
        ? utilization_
        : 1.0 / static_cast<double>(cores_);
    // Multiplying by a speed factor of exactly 1.0 is an IEEE
    // identity, so the default class retires work bit-identically to
    // the pre-heterogeneity machine.
    const double dt = cycles / (effectiveHz() * share_);
    account(dt, power_.watts(frequencyHz(), util));
    return dt;
}

void
Machine::idleFor(double dt)
{
    if (dt < 0.0)
        throw std::invalid_argument("Machine: negative idle time");
    account(dt, power_.watts(frequencyHz(), 0.0));
}

void
Machine::idleUntil(double t)
{
    if (t > clock_.now())
        idleFor(t - clock_.now());
}

double
Machine::meanWatts(double t0, double t1) const
{
    if (t1 <= t0)
        return 0.0;
    double joules = 0.0;
    for (const auto &seg : trace_) {
        const double lo = std::max(seg.start_s, t0);
        const double hi = std::min(seg.end_s, t1);
        if (hi > lo)
            joules += seg.watts * (hi - lo);
    }
    return joules / (t1 - t0);
}

} // namespace powerdial::sim
