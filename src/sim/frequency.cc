#include "sim/frequency.h"

#include <cmath>
#include <stdexcept>

namespace powerdial::sim {

FrequencyScale::FrequencyScale(std::vector<double> freqs_hz)
    : freqs_hz_(std::move(freqs_hz))
{
    if (freqs_hz_.empty())
        throw std::invalid_argument("FrequencyScale: empty frequency list");
    for (std::size_t i = 0; i + 1 < freqs_hz_.size(); ++i) {
        if (freqs_hz_[i] <= freqs_hz_[i + 1]) {
            throw std::invalid_argument(
                "FrequencyScale: frequencies must be strictly decreasing");
        }
    }
    if (freqs_hz_.back() <= 0.0)
        throw std::invalid_argument("FrequencyScale: non-positive frequency");
}

FrequencyScale
FrequencyScale::xeonE5530()
{
    // Paper Figure 6 x-axis: 2.4, 2.26, 2.13, 2, 1.86, 1.73, 1.6 GHz.
    return FrequencyScale({2.40 * kGHz, 2.26 * kGHz, 2.13 * kGHz,
                           2.00 * kGHz, 1.86 * kGHz, 1.73 * kGHz,
                           1.60 * kGHz});
}

double
FrequencyScale::frequencyHz(std::size_t state) const
{
    if (state >= freqs_hz_.size())
        throw std::out_of_range("FrequencyScale: bad P-state");
    return freqs_hz_[state];
}

std::size_t
FrequencyScale::closestState(double hz) const
{
    std::size_t best = 0;
    double best_err = std::abs(freqs_hz_[0] - hz);
    for (std::size_t i = 1; i < freqs_hz_.size(); ++i) {
        const double err = std::abs(freqs_hz_[i] - hz);
        if (err < best_err) {
            best = i;
            best_err = err;
        }
    }
    return best;
}

} // namespace powerdial::sim
