/**
 * @file
 * DVFS governor: externally imposed frequency schedules (power caps).
 *
 * Models the paper's power-capping scenario (section 5.4): "Approximately
 * one quarter of the way through the computation we impose a power cap
 * that drops the machine into its lowest power state (1.6 GHz).
 * Approximately three quarters of the way through the computation we lift
 * the power cap." The governor holds a time-indexed schedule of P-states
 * and applies the pending one each time it is polled.
 */
#ifndef POWERDIAL_SIM_DVFS_GOVERNOR_H
#define POWERDIAL_SIM_DVFS_GOVERNOR_H

#include <cstddef>
#include <vector>

#include "sim/machine.h"

namespace powerdial::sim {

/** A scheduled frequency change. */
struct PStateEvent
{
    double time_s;      //!< Virtual time at which the change applies.
    std::size_t pstate; //!< Target P-state.
};

/**
 * Applies a schedule of P-state changes to a machine as virtual time
 * passes. Poll it from the experiment loop (e.g. once per heartbeat).
 */
class DvfsGovernor
{
  public:
    DvfsGovernor() = default;

    /** Append an event. Events must be added in non-decreasing time order. */
    void schedule(double time_s, std::size_t pstate);

    /**
     * Convenience: a power cap imposed at @p impose_s (drop to the lowest
     * P-state) and lifted at @p lift_s (back to P-state 0).
     */
    static DvfsGovernor powerCap(const Machine &machine, double impose_s,
                                 double lift_s);

    /**
     * Apply every event whose time has been reached on @p machine.
     * @return true if the P-state changed.
     */
    bool poll(Machine &machine);

    /**
     * Rewind to the top of the schedule so the governor can replay it
     * on a fresh run, with event times re-interpreted relative to
     * @p origin_s. core::Session resets its owned governor to the
     * machine's current time at every run start, so a schedule built
     * against t = 0 (like powerCap) replays correctly even when the
     * same machine carries virtual time over from a previous run.
     */
    void
    reset(double origin_s = 0.0)
    {
        next_ = 0;
        origin_s_ = origin_s;
    }

    /** Events not yet applied. */
    std::size_t pending() const { return events_.size() - next_; }

  private:
    std::vector<PStateEvent> events_;
    std::size_t next_ = 0;
    double origin_s_ = 0.0; //!< Added to event times when polling.
};

} // namespace powerdial::sim

#endif // POWERDIAL_SIM_DVFS_GOVERNOR_H
