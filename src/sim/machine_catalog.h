/**
 * @file
 * Named machine classes for heterogeneous fleets.
 *
 * Every simulated machine used to be a clone of one Machine::Config;
 * placement and power arbitration never faced a real affinity
 * decision. A MachineCatalog names a set of machine classes — each
 * with its own P-state/frequency table, power model, core count, and
 * relative per-cycle speed factor — from which sim::Cluster provisions
 * a mixed fleet (a class mix: so many machines of class 0, so many of
 * class 1, ...). The built-in bigLittle() catalog models the classic
 * asymmetric pairing: full-size Xeon-class servers next to low-power
 * nodes with a slower clock, a smaller power envelope, fewer cores,
 * and a sub-1.0 speed factor.
 */
#ifndef POWERDIAL_SIM_MACHINE_CATALOG_H
#define POWERDIAL_SIM_MACHINE_CATALOG_H

#include <cstddef>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace powerdial::sim {

/** One named machine class. */
struct MachineClass
{
    std::string name;       //!< Unique class name, e.g. "big".
    Machine::Config config; //!< Frequency/power tables, cores, speed.
};

/**
 * An immutable, ordered set of named machine classes. Class indices
 * are stable: a class mix and every per-class report row refer to
 * classes by their index here.
 */
class MachineCatalog
{
  public:
    /** An empty catalog (no classes); Cluster treats it as "use the
     *  legacy homogeneous configuration". */
    MachineCatalog() = default;

    /** @param classes Non-empty, uniquely named classes. */
    explicit MachineCatalog(std::vector<MachineClass> classes);

    /** A one-class catalog of @p config — the homogeneous fleet
     *  expressed through the catalog seam. */
    static MachineCatalog homogeneous(const Machine::Config &config,
                                      std::string name = "default");

    /**
     * The built-in asymmetric pair: class 0 "big" is the paper's Xeon
     * E5530 server (seven P-states 2.4..1.6 GHz, 90/220 W, 8 cores,
     * speed 1.0); class 1 "little" is a low-power node (five P-states
     * 1.6..0.8 GHz, 40/95 W envelope, 4 cores, speed factor 0.6 —
     * per-cycle throughput well below the big class even at equal
     * frequency).
     */
    static MachineCatalog bigLittle();

    std::size_t size() const { return classes_.size(); }
    bool empty() const { return classes_.empty(); }

    /** Class @p i (throws on out-of-range). */
    const MachineClass &at(std::size_t i) const
    {
        return classes_.at(i);
    }

    const std::vector<MachineClass> &classes() const
    {
        return classes_;
    }

    /** Index of the class named @p name; throws if absent. */
    std::size_t indexOf(const std::string &name) const;

    /**
     * The fastest effective cycle rate any class reaches (max over
     * classes of maxHz * speed_factor) — the fleet-wide reference
     * speed calibrated response models are priced against.
     */
    double referenceEffectiveHz() const;

  private:
    std::vector<MachineClass> classes_;
};

} // namespace powerdial::sim

#endif // POWERDIAL_SIM_MACHINE_CATALOG_H
