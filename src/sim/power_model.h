/**
 * @file
 * Full-system power model for the simulated server.
 *
 * Stands in for the WattsUp wall-power meter of the paper (section 5.1):
 * "The measured power ranges from 220 watts (at full load) to 80 watts
 * (idle), with a typical idle power consumption of approximately 90 watts."
 *
 * The model decomposes full-system power into a frequency-independent
 * idle floor and a dynamic component that scales with utilisation and
 * with f * V(f)^2 (the classic CMOS dynamic-power relation), where the
 * core voltage V(f) scales linearly with frequency between its minimum
 * and maximum operating points.
 */
#ifndef POWERDIAL_SIM_POWER_MODEL_H
#define POWERDIAL_SIM_POWER_MODEL_H

#include "sim/frequency.h"

namespace powerdial::sim {

/** Tunable parameters of the server power model. */
struct PowerModelParams
{
    /** Idle full-system power in watts (paper: ~90 W typical). */
    double idle_watts = 90.0;
    /** Full-system power at max frequency, 100% utilisation (paper: 220 W). */
    double peak_watts = 220.0;
    /** Core voltage at the lowest frequency, volts. */
    double v_min = 0.95;
    /** Core voltage at the highest frequency, volts. */
    double v_max = 1.10;
    /** Lowest frequency of the voltage ramp, Hz. */
    double f_min_hz = 1.60 * kGHz;
    /** Highest frequency of the voltage ramp, Hz. */
    double f_max_hz = 2.40 * kGHz;
};

/**
 * Maps (frequency, utilisation) to full-system power in watts.
 *
 * Invariants (verified by the test suite):
 *  - power(f, 0) == idle watts for every f;
 *  - power(f, u) is monotonically non-decreasing in both f and u;
 *  - power(f_max, 1) == peak watts.
 */
class PowerModel
{
  public:
    PowerModel() : PowerModel(PowerModelParams{}) {}
    explicit PowerModel(const PowerModelParams &params);

    /**
     * Full-system power in watts.
     *
     * @param freq_hz     Current clock frequency.
     * @param utilization Fraction of compute capacity in use, in [0, 1].
     */
    double watts(double freq_hz, double utilization) const;

    /** The idle floor in watts. */
    double idleWatts() const { return params_.idle_watts; }

    /** Power at max frequency and full utilisation, watts. */
    double peakWatts() const { return params_.peak_watts; }

    /** Core voltage at @p freq_hz (linear ramp, clamped at the ends). */
    double voltage(double freq_hz) const;

    const PowerModelParams &params() const { return params_; }

  private:
    PowerModelParams params_;
    /** Dynamic-power normaliser: f_max * V(f_max)^2. */
    double dyn_norm_;
};

} // namespace powerdial::sim

#endif // POWERDIAL_SIM_POWER_MODEL_H
