/**
 * @file
 * The PowerDial control-loop runtime (paper section 2.3, Figure 2) as
 * a composable session.
 *
 * A Session composes the three separable components of the control
 * system around an application's main loop, each behind its own seam:
 *
 *   - heart-rate feedback   : hb::Monitor (the Application Heartbeats
 *                             sliding window);
 *   - the control law       : core::ControlPolicy (default: the
 *                             paper's deadbeat integral law);
 *   - the actuator          : core::ActuationStrategy (default: the
 *                             minimal-speedup constraint solution);
 *   - observation           : any number of core::RunObserver
 *                             callbacks (trace recording, CSV export).
 *
 * Each loop iteration emits a heartbeat; every quantum (twenty beats
 * by default) the policy converts the heart-rate error into a speedup
 * command, the strategy converts it into a knob schedule, and the
 * session installs knob settings by writing the recorded control
 * variable values into the application's address space.
 *
 * The Session replaces the pre-redesign core::Runtime, whose single
 * run() hard-wired one control law, a two-value actuation enum, baked-
 * in trace collection, and a raw-pointer DVFS governor. The DVFS
 * governor is now an owned component of SessionOptions, reset at the
 * start of every run so sessions are replayable and parallelizable.
 */
#ifndef POWERDIAL_CORE_SESSION_H
#define POWERDIAL_CORE_SESSION_H

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/actuation_strategy.h"
#include "core/app.h"
#include "core/control_policy.h"
#include "core/response_model.h"
#include "core/run_observer.h"
#include "heartbeats/heartbeat.h"
#include "sim/dvfs_governor.h"

namespace powerdial::core {

/**
 * Context handed to the external beat gate (SessionOptions::gate) at
 * the top of every beat, before the unit's work executes.
 */
struct BeatGateContext
{
    std::size_t beat;      //!< 0-based index of the beat about to run.
    sim::Machine &machine; //!< The machine the run executes on.
    /**
     * Set by the gate: virtual seconds the session idles before
     * processing this beat's unit — an externally imposed pause. The
     * pause delays subsequent heartbeats, so the control loop sees the
     * resulting rate drop and compensates with knobs like it does for
     * any other capacity disturbance.
     */
    double pause_seconds = 0.0;
    /**
     * Set by the gate: idle seconds inserted per busy second of this
     * beat's work, applied after the unit executes (like race-to-
     * idle's planned slack). Because it scales with the measured busy
     * time — whatever the current frequency, core share, and knob
     * setting — a gate duty-cycling the machine to an average power
     * budget meets the budget exactly: mean watts over the beat are
     * (W_busy + ratio * W_idle) / (1 + ratio).
     */
    double pause_per_busy = 0.0;
};

/**
 * External arbitration hook: called once per beat with a mutable
 * context. A gate may pause the session (pause_seconds) and may
 * actuate the machine directly (e.g. install a new P-state cap) —
 * this is how an agent outside the session, such as the fleet power
 * arbiter, suspends and resumes tenants mid-run without owning the
 * control loop.
 */
using BeatGate = std::function<void(BeatGateContext &)>;

/**
 * Compose gates into one: each beat runs every non-null gate in order
 * on the same context, so their pause contributions accumulate (the
 * fleet server composes the caller's gate with the lease gate this
 * way). Null entries are skipped; if no gate remains the result is a
 * null BeatGate, which SessionOptions treats as "no gate".
 */
BeatGate composeGates(std::vector<BeatGate> gates);

/** Two-gate convenience overload (the common caller + arbiter pair). */
BeatGate composeGates(BeatGate first, BeatGate second);

/**
 * A duty-cycle pause gate: every beat adds @p ratio idle seconds per
 * busy second of the beat's work (BeatGateContext::pause_per_busy).
 * Because the pause scales with measured busy time, a machine
 * duty-cycled this way meets an average power budget exactly whatever
 * the tenant's share, frequency, and knob setting.
 */
BeatGate makeDutyCycleGate(double ratio);

/**
 * Dynamic duty-cycle gate: @p ratio() is sampled every beat, so an
 * external agent (e.g. a fleet arbitration lease) can retune the
 * pause mid-run and the next beat already honours it.
 */
BeatGate makeDutyCycleGate(std::function<double()> ratio);

/**
 * Session configuration: plain fields plus builder-style setters so
 * call sites can compose options fluently:
 *
 *   Session session(app, table, model,
 *                   SessionOptions()
 *                       .withTargetRate(rate)
 *                       .withStrategy(makeRaceToIdleStrategy())
 *                       .withGovernor(sim::DvfsGovernor::powerCap(...)));
 */
struct SessionOptions
{
    std::size_t quantum_beats = 20; //!< Paper's heuristic quantum.
    std::size_t window = 20;        //!< Heartbeat sliding window.
    /**
     * Target heart rate; 0 means "use the calibrated baseline rate",
     * the paper's standard setup (min == max == baseline rate).
     */
    double target_rate = 0.0;
    /** If false, knobs are pinned at the default setting (the paper's
     *  "without dynamic knobs" comparison runs). */
    bool knobs_enabled = true;
    /** Control-law factory; null means the deadbeat integral law. */
    PolicyFactory policy;
    /** Actuation factory; null means minimal-speedup. */
    StrategyFactory strategy;
    /**
     * Owned DVFS governor imposing frequency changes (the power-cap
     * scenario). At every run start the session rewinds it and
     * re-anchors its schedule at the machine's current virtual time,
     * so event times are relative to the run, not absolute — the
     * session replays the same scenario on every run, including on a
     * machine reused across runs.
     */
    std::optional<sim::DvfsGovernor> governor;
    /** Per-beat external arbitration hook; null means no gate. */
    BeatGate gate;

    SessionOptions &withQuantum(std::size_t beats);
    SessionOptions &withWindow(std::size_t beats);
    SessionOptions &withTargetRate(double rate);
    SessionOptions &withKnobsEnabled(bool enabled);
    SessionOptions &withPolicy(PolicyFactory factory);
    SessionOptions &withStrategy(StrategyFactory factory);
    SessionOptions &withGovernor(sim::DvfsGovernor governor);
    SessionOptions &withGate(BeatGate gate);
};

/**
 * One controlled-execution session for one application.
 *
 * The application, knob table, and response model must outlive the
 * session. A session is single-threaded, but independent sessions on
 * cloned applications run concurrently (see core/consolidation.h).
 */
class Session
{
  public:
    /**
     * @param app     The heartbeat-instrumented application.
     * @param table   Recorded control-variable values + write bindings.
     * @param model   Calibrated response model.
     * @param options Control-system composition options.
     */
    Session(App &app, const KnobTable &table, const ResponseModel &model,
            SessionOptions options = {});

    /** Register a borrowed observer (must outlive the session). */
    void observe(RunObserver &observer);

    /** Register an owned observer; returns a reference to it. */
    RunObserver &observe(std::unique_ptr<RunObserver> observer);

    /** Construct and register an owned observer of type T in place. */
    template <typename T, typename... Args>
    T &
    attach(Args &&...args)
    {
        auto owned = std::make_unique<T>(std::forward<Args>(args)...);
        T &ref = *owned;
        observe(std::move(owned));
        return ref;
    }

    /**
     * Execute input @p input to completion on @p machine under closed-
     * loop control. Equivalent to start() followed by one
     * advanceUntil() with no deadline.
     */
    ControlledRun run(std::size_t input, sim::Machine &machine);

    /**
     * Begin a controlled run without executing any units: installs the
     * baseline knob setting, loads the input, rewinds the governor,
     * and emits onRunStart. The machine must outlive the run. This is
     * the persistent-tenant entry point: a fleet epoch loop starts a
     * tenant once, then advances it one epoch slice at a time.
     */
    void start(std::size_t input, sim::Machine &machine);

    /** True between start() and the run's completion. */
    bool active() const { return state_.has_value(); }

    /**
     * Advance the active run until it completes or the machine's
     * virtual time reaches @p deadline_s (checked at the top of each
     * beat; a beat whose work straddles the deadline finishes its
     * unit). Virtual time is continuous across calls — slicing a run
     * changes nothing about the run itself, only when in host time
     * its beats execute — so an external agent may mutate what the
     * session's beat gate reads between slices and the next beat
     * already observes it.
     *
     * @return The completed run (after emitting onRunEnd), or
     *         std::nullopt when the deadline arrived first.
     */
    std::optional<ControlledRun> advanceUntil(double deadline_s);

    /** Units processed so far in the active run (0 when inactive). */
    std::size_t unitsProcessed() const
    {
        return state_.has_value() ? state_->unit : 0;
    }

    const SessionOptions &options() const { return options_; }
    const ResponseModel &model() const { return *model_; }
    /** The control law instance this session composes. */
    const ControlPolicy &policy() const { return *policy_; }
    /** The actuation strategy instance this session composes. */
    const ActuationStrategy &strategy() const { return *strategy_; }

  private:
    /** Everything one in-flight run carries across epoch slices. */
    struct RunState
    {
        std::size_t input = 0;
        sim::Machine *machine = nullptr;
        double target = 0.0;
        double start_time_s = 0.0;
        std::size_t units = 0;
        std::size_t unit = 0; //!< Next unit (beat) to process.
        std::optional<hb::Monitor> monitor;
        ActuationPlan plan;
        std::size_t baseline = 0;
        std::size_t applied = 0;
        double commanded = 1.0;
        double qos_weighted = 0.0;
        double qos_work = 0.0;
        // Calibrated point of the installed combination, refreshed
        // only when the combination changes.
        double combo_qos = 0.0;
        double combo_speedup = 1.0;
        ControlledRun result;
    };

    void lookupCombo(std::size_t combo);

    App *app_;
    const KnobTable *table_;
    const ResponseModel *model_;
    SessionOptions options_;
    std::unique_ptr<ControlPolicy> policy_;
    std::unique_ptr<ActuationStrategy> strategy_;
    std::vector<RunObserver *> observers_;
    std::vector<std::unique_ptr<RunObserver>> owned_observers_;
    std::optional<RunState> state_;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_SESSION_H
