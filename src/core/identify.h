/**
 * @file
 * Dynamic knob identification pipeline (paper section 2.1).
 *
 * Runs the influence-traced application once per knob combination,
 * applies the control-variable checks, and on acceptance materialises a
 * KnobTable: bindings into the application plus the recorded
 * control-variable values for every combination.
 */
#ifndef POWERDIAL_CORE_IDENTIFY_H
#define POWERDIAL_CORE_IDENTIFY_H

#include <string>

#include "core/app.h"
#include "influence/analysis.h"

namespace powerdial::core {

/** Result of knob identification for one application. */
struct IdentificationResult
{
    influence::AnalysisResult analysis;
    /** Populated only when analysis.accepted. */
    KnobTable table;
    /** The developer-auditable control variable report. */
    std::string report;
};

/**
 * Trace every knob combination of @p app, run the control-variable
 * checks, and build the knob table.
 */
IdentificationResult identifyKnobs(App &app);

} // namespace powerdial::core

#endif // POWERDIAL_CORE_IDENTIFY_H
