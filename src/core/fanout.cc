#include "core/fanout.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace powerdial::core {

KnobTable
rebindKnobTable(const KnobTable &source, App &app)
{
    KnobTable table;
    app.bindControlVariables(table);
    if (table.variableCount() != source.variableCount())
        throw std::invalid_argument(
            "rebindKnobTable: binding count mismatch");
    const std::size_t combinations = app.knobSpace().combinations();
    for (std::size_t c = 0; c < combinations; ++c)
        for (std::size_t v = 0; v < source.variableCount(); ++v)
            table.record(c, v, source.value(c, v));
    return table;
}

namespace {

/** Resolve a threads option: 0 = hardware concurrency (at least 1). */
std::size_t
resolveThreads(std::size_t threads)
{
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

FanoutEngine::FanoutEngine(std::size_t threads, std::size_t max_tasks)
{
    std::size_t resolved = resolveThreads(threads);
    if (max_tasks != 0)
        resolved = std::min(resolved, max_tasks);
    if (resolved > 1)
        pool_.emplace(resolved);
}

void
FanoutEngine::run(std::size_t tasks, const ThreadPool::Task &fn)
{
    if (serial() || tasks <= 1) {
        for (std::size_t task = 0; task < tasks; ++task)
            fn(task, 0);
        return;
    }
    pool_->parallelFor(tasks, fn);
}

std::vector<std::unique_ptr<App>>
FanoutEngine::cloneApps(const App &app, std::size_t count)
{
    std::vector<std::unique_ptr<App>> clones(count);
    for (auto &clone : clones)
        clone = app.clone();
    return clones;
}

FanoutEngine::BoundClones
FanoutEngine::cloneBound(const App &app, const KnobTable &table,
                         std::size_t count)
{
    BoundClones bound;
    bound.apps = cloneApps(app, count);
    bound.tables.reserve(count);
    for (auto &clone : bound.apps)
        bound.tables.push_back(rebindKnobTable(table, *clone));
    return bound;
}

} // namespace powerdial::core
