#include "core/identify.h"

#include <stdexcept>

namespace powerdial::core {

IdentificationResult
identifyKnobs(App &app)
{
    const KnobSpace &space = app.knobSpace();

    // One instrumented execution per combination of parameter settings.
    std::vector<influence::TraceRun> runs;
    runs.reserve(space.combinations());
    for (std::size_t c = 0; c < space.combinations(); ++c) {
        influence::TraceRun trace;
        app.traceRun(trace, space.valuesOf(c));
        runs.push_back(std::move(trace));
    }

    // The specified parameters occupy bits 0 .. parameterCount()-1.
    influence::InfluenceMask specified = 0;
    std::vector<std::string> param_names;
    for (std::size_t p = 0; p < space.parameterCount(); ++p) {
        specified |= influence::paramBit(static_cast<unsigned>(p));
        param_names.push_back(space.parameter(p).name);
    }

    IdentificationResult result;
    result.analysis = influence::identifyControlVariables(runs, specified);
    result.report = influence::renderReport(result.analysis, param_names);
    if (!result.analysis.accepted)
        return result;

    // Materialise the knob table: the application registers its write
    // bindings; we pair them with the recorded values by variable name.
    app.bindControlVariables(result.table);
    for (std::size_t i = 0; i < result.table.variableCount(); ++i) {
        const auto &name = result.table.binding(i).name;
        const int cv = result.analysis.indexOf(name);
        if (cv < 0) {
            throw std::logic_error(
                "identifyKnobs: app binds '" + name +
                "' but the influence analysis never saw it");
        }
        const auto &values =
            result.analysis.control_variables[static_cast<std::size_t>(cv)]
                .values_per_combination;
        for (std::size_t c = 0; c < values.size(); ++c)
            result.table.record(c, i, values[c]);
    }
    return result;
}

} // namespace powerdial::core
