#include "core/calibration.h"

#include <cmath>
#include <stdexcept>

namespace powerdial::core {

RunMeasurement
runFixed(App &app, std::size_t input, std::size_t combination,
         const sim::Machine::Config &config)
{
    app.configure(app.knobSpace().valuesOf(combination));
    app.loadInput(input);
    sim::Machine machine(config);
    const double start = machine.now();
    const std::size_t units = app.unitCount();
    for (std::size_t u = 0; u < units; ++u)
        app.processUnit(u, machine);
    RunMeasurement m;
    m.seconds = machine.now() - start;
    m.output = app.output();
    return m;
}

CalibrationResult
calibrate(App &app, const std::vector<std::size_t> &inputs,
          const CalibrationOptions &options)
{
    if (inputs.empty())
        throw std::invalid_argument("calibrate: no training inputs");

    const KnobSpace &space = app.knobSpace();
    const std::size_t baseline = app.defaultCombination();

    // Baseline pass: per-input reference time and output abstraction.
    std::vector<double> base_seconds;
    std::vector<qos::OutputAbstraction> base_outputs;
    base_seconds.reserve(inputs.size());
    for (const std::size_t input : inputs) {
        auto m = runFixed(app, input, baseline, options.machine);
        if (m.seconds <= 0.0)
            throw std::logic_error("calibrate: zero baseline time");
        base_seconds.push_back(m.seconds);
        base_outputs.push_back(std::move(m.output));
    }

    CalibrationData data;
    data.speedups.resize(space.combinations());
    data.qos_losses.resize(space.combinations());

    std::vector<OperatingPoint> points;
    points.reserve(space.combinations());
    double baseline_mean_seconds = 0.0;
    double baseline_mean_units = 0.0;

    for (std::size_t c = 0; c < space.combinations(); ++c) {
        double speedup_sum = 0.0;
        double qos_sum = 0.0;
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            RunMeasurement m;
            if (c == baseline) {
                // Reuse the baseline pass (identical deterministic run).
                m.seconds = base_seconds[i];
                m.output = base_outputs[i];
            } else {
                m = runFixed(app, inputs[i], c, options.machine);
            }
            const double speedup = base_seconds[i] / m.seconds;
            const double qos =
                qos::distortion(base_outputs[i], m.output);
            data.speedups[c].push_back(speedup);
            data.qos_losses[c].push_back(qos);
            speedup_sum += speedup;
            qos_sum += qos;
        }
        const double n = static_cast<double>(inputs.size());
        points.push_back({c, speedup_sum / n, qos_sum / n});
    }

    // Mean baseline time and heart rate (units/second) over the
    // training inputs, used as the controller's model of b.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        app.loadInput(inputs[i]);
        baseline_mean_seconds += base_seconds[i];
        baseline_mean_units += static_cast<double>(app.unitCount());
    }
    baseline_mean_seconds /= static_cast<double>(inputs.size());
    baseline_mean_units /= static_cast<double>(inputs.size());
    const double baseline_rate = baseline_mean_units /
                                 baseline_mean_seconds;

    CalibrationResult result{
        ResponseModel(points, baseline, baseline_mean_seconds,
                      baseline_rate, options.qos_cap),
        std::move(data)};
    return result;
}

double
correlation(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.empty())
        throw std::invalid_argument("correlation: size mismatch");
    const double n = static_cast<double>(a.size());
    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= n;
    mb /= n;
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    if (va <= 0.0 || vb <= 0.0) {
        // Degenerate: constant series. Correlated iff identical means.
        return ma == mb ? 1.0 : 0.0;
    }
    return cov / std::sqrt(va * vb);
}

} // namespace powerdial::core
