#include "core/calibration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/fanout.h"

namespace powerdial::core {

RunMeasurement
runFixed(App &app, std::size_t input, std::size_t combination,
         const sim::Machine::Config &config)
{
    app.configure(app.knobSpace().valuesOf(combination));
    app.loadInput(input);
    sim::Machine machine(config);
    const double start = machine.now();
    const std::size_t units = app.unitCount();
    for (std::size_t u = 0; u < units; ++u)
        app.processUnit(u, machine);
    RunMeasurement m;
    m.seconds = machine.now() - start;
    m.output = app.output();
    return m;
}

CalibrationResult
calibrate(App &app, const std::vector<std::size_t> &inputs,
          const CalibrationOptions &options)
{
    if (inputs.empty())
        throw std::invalid_argument("calibrate: no training inputs");

    const KnobSpace &space = app.knobSpace();
    const std::size_t baseline = app.defaultCombination();
    const std::size_t total_runs = space.combinations() * inputs.size();
    // The engine caps the workers (each owning a full app clone) at
    // the number of runs to claim.
    FanoutEngine engine(options.threads, total_runs);

    CalibrationData data;
    data.speedups.resize(space.combinations());
    data.qos_losses.resize(space.combinations());

    std::vector<OperatingPoint> points;
    points.reserve(space.combinations());

    // Per-pair merge arithmetic, shared by both paths below. Parallel
    // output is bit-identical to serial because threading only moves
    // *when* the independent (combination, input) runs execute; this
    // accumulation always happens serially in combination-then-input
    // order.
    const auto accumulate = [&data](std::size_t c,
                                    const RunMeasurement &base_m,
                                    const RunMeasurement &m,
                                    double &speedup_sum,
                                    double &qos_sum) {
        const double speedup = base_m.seconds / m.seconds;
        const double qos = qos::distortion(base_m.output, m.output);
        data.speedups[c].push_back(speedup);
        data.qos_losses[c].push_back(qos);
        speedup_sum += speedup;
        qos_sum += qos;
    };
    const auto checkBase = [](const RunMeasurement &m) {
        if (m.seconds <= 0.0)
            throw std::logic_error("calibrate: zero baseline time");
    };

    // Baseline pass: per-input reference time and output abstraction.
    std::vector<RunMeasurement> base(inputs.size());

    if (engine.serial()) {
        // Serial: measure and merge in one streaming pass on the
        // caller's app (only the baseline measurements stay live).
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            base[i] = runFixed(app, inputs[i], baseline,
                               options.machine);
            checkBase(base[i]);
        }
        for (std::size_t c = 0; c < space.combinations(); ++c) {
            double speedup_sum = 0.0;
            double qos_sum = 0.0;
            for (std::size_t i = 0; i < inputs.size(); ++i) {
                if (c == baseline) {
                    // Reuse the baseline pass (identical run).
                    accumulate(c, base[i], base[i], speedup_sum,
                               qos_sum);
                } else {
                    const RunMeasurement m = runFixed(
                        app, inputs[i], c, options.machine);
                    accumulate(c, base[i], m, speedup_sum, qos_sum);
                }
            }
            const double n = static_cast<double>(inputs.size());
            points.push_back({c, speedup_sum / n, qos_sum / n});
        }
    } else {
        // Parallel: fan the independent runs out over workers that
        // each own a private clone of the app (the original app is
        // not touched until the runs are in), writing into disjoint
        // slots of a (combination x input) grid, then merge the grid
        // serially in the exact order of the serial path above.
        const auto clones = engine.workerClones(app);
        engine.run(
            inputs.size(), [&](std::size_t i, std::size_t w) {
                base[i] = runFixed(*clones[w], inputs[i], baseline,
                                   options.machine);
            });
        for (const RunMeasurement &m : base)
            checkBase(m);
        std::vector<RunMeasurement> grid(total_runs);
        engine.run(
            total_runs, [&](std::size_t task, std::size_t w) {
                const std::size_t c = task / inputs.size();
                const std::size_t i = task % inputs.size();
                if (c == baseline)
                    return; // Reuses the baseline pass below.
                grid[task] = runFixed(*clones[w], inputs[i], c,
                                      options.machine);
            });
        for (std::size_t c = 0; c < space.combinations(); ++c) {
            double speedup_sum = 0.0;
            double qos_sum = 0.0;
            for (std::size_t i = 0; i < inputs.size(); ++i) {
                const RunMeasurement &m =
                    c == baseline ? base[i]
                                  : grid[c * inputs.size() + i];
                accumulate(c, base[i], m, speedup_sum, qos_sum);
            }
            const double n = static_cast<double>(inputs.size());
            points.push_back({c, speedup_sum / n, qos_sum / n});
        }
    }

    // Mean baseline time and heart rate (units/second) over the
    // training inputs, used as the controller's model of b.
    double baseline_mean_seconds = 0.0;
    double baseline_mean_units = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        app.loadInput(inputs[i]);
        baseline_mean_seconds += base[i].seconds;
        baseline_mean_units += static_cast<double>(app.unitCount());
    }
    baseline_mean_seconds /= static_cast<double>(inputs.size());
    baseline_mean_units /= static_cast<double>(inputs.size());
    const double baseline_rate = baseline_mean_units /
                                 baseline_mean_seconds;

    CalibrationResult result{
        ResponseModel(points, baseline, baseline_mean_seconds,
                      baseline_rate, options.qos_cap),
        std::move(data)};
    return result;
}

double
correlation(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.empty())
        throw std::invalid_argument("correlation: size mismatch");
    const double n = static_cast<double>(a.size());
    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ma += a[i];
        mb += b[i];
    }
    ma /= n;
    mb /= n;
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    if (va <= 0.0 || vb <= 0.0) {
        // Degenerate: constant series. Correlated iff identical means.
        return ma == mb ? 1.0 : 0.0;
    }
    return cov / std::sqrt(va * vb);
}

} // namespace powerdial::core
