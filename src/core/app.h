/**
 * @file
 * The application pattern PowerDial targets (paper section 2).
 *
 * PowerDial applications follow a fixed computational pattern:
 *
 *  - Initialization: parse configuration parameters, compute control
 *    variables, store them in the address space.
 *  - Main control loop: per iteration, emit a heartbeat, read one unit
 *    of input, process it (reading the control variables), produce
 *    output.
 *
 * An App exposes that pattern to PowerDial: its knob parameters, its
 * init phase (plain and influence-traced variants), write bindings to
 * its control variables, its unit-structured main loop costed on the
 * simulated machine, and the benchmark-specific output abstraction used
 * by the QoS metric.
 */
#ifndef POWERDIAL_CORE_APP_H
#define POWERDIAL_CORE_APP_H

#include <memory>
#include <string>
#include <vector>

#include "core/knob.h"
#include "influence/trace_run.h"
#include "qos/distortion.h"
#include "sim/machine.h"

namespace powerdial::core {

/** Interface every PowerDial benchmark application implements. */
class App
{
  public:
    virtual ~App() = default;

    /** Benchmark name, e.g. "swaptions". */
    virtual std::string name() const = 0;

    /**
     * Deep-copy this application: an independent instance with the
     * same inputs, knob space, and current configured state that
     * shares no mutable state with the original. Because apps are
     * deterministic, a fixed run on a clone must be bit-identical to
     * the same run on the original — parallel calibration relies on
     * this to hand every worker thread a private instance.
     */
    virtual std::unique_ptr<App> clone() const = 0;

    /** The user-identified configuration parameters and their ranges. */
    virtual const KnobSpace &knobSpace() const = 0;

    /**
     * The combination delivering the highest QoS (the baseline; for the
     * paper's benchmarks this is the default parameter setting).
     */
    virtual std::size_t defaultCombination() const = 0;

    /**
     * Initialization phase: derive and store the control variables from
     * @p params (one value per knob parameter).
     */
    virtual void configure(const std::vector<double> &params) = 0;

    /**
     * Influence-traced mirror of configure() + the main loop's control
     * variable accesses: stores into @p trace during the init phase,
     * then (after trace.firstHeartbeat()) records the loop's reads.
     * Stands in for running the LLVM-instrumented binary.
     */
    virtual void traceRun(influence::TraceRun &trace,
                          const std::vector<double> &params) = 0;

    /**
     * Register write bindings for every control variable, in the same
     * order the traced run stores them.
     */
    virtual void bindControlVariables(KnobTable &table) = 0;

    /** Number of available inputs (training + production). */
    virtual std::size_t inputCount() const = 0;

    /** Indices of the training inputs (paper: random half of the set). */
    virtual std::vector<std::size_t> trainingInputs() const = 0;

    /** Indices of the production (previously unseen) inputs. */
    virtual std::vector<std::size_t> productionInputs() const = 0;

    /**
     * Load input @p index and reset all per-run state (the next run
     * starts from a fresh main loop).
     */
    virtual void loadInput(std::size_t index) = 0;

    /** Main-loop iterations for the loaded input. */
    virtual std::size_t unitCount() const = 0;

    /**
     * Process loop iteration @p unit, costing its work on @p machine
     * (which advances virtual time).
     */
    virtual void processUnit(std::size_t unit, sim::Machine &machine) = 0;

    /**
     * The output abstraction for the completed run over the loaded
     * input (paper section 2.2).
     */
    virtual qos::OutputAbstraction output() const = 0;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_APP_H
