/**
 * @file
 * Actuation-strategy advisor.
 *
 * Paper section 2.3.3 gives two solutions of the actuation constraint
 * system and section 3 explains when each wins: "for platforms with
 * sufficiently low idle power consumption, PowerDial supports
 * race-to-idle execution"; for the high idle power "common in current
 * server class machines" the minimal-speedup (low-power-state)
 * solution is better. The advisor makes that choice automatically by
 * evaluating the section 3 energy models (Equations 13-17) against the
 * platform's power model, and hands back a StrategyFactory ready to
 * drop into SessionOptions.
 */
#ifndef POWERDIAL_CORE_POLICY_ADVISOR_H
#define POWERDIAL_CORE_POLICY_ADVISOR_H

#include <string>

#include "core/actuation_strategy.h"
#include "sim/power_model.h"

namespace powerdial::core {

/** Outcome of the strategy analysis. */
struct PolicyAdvice
{
    /** True when racing to idle beats the low-power-state solution. */
    bool race_to_idle_wins;
    /** Name of the winning strategy ("race-to-idle" or
     *  "minimal-speedup"), matching ActuationStrategy::name(). */
    std::string strategy_name;
    double race_energy_j;   //!< E1: sprint-then-sleep energy (Eq. 14).
    double stretch_energy_j;//!< E2: low-power-state energy (Eq. 16).
    /**
     * Sleep power at which the two strategies break even; below it
     * race-to-idle wins. Negative means race-to-idle can never win on
     * this platform (its voltage scaling makes the low-power state
     * strictly more work-efficient).
     */
    double breakeven_sleep_watts;
    /** The same break-even expressed as a fraction of peak power. */
    double breakeven_idle_fraction;

    /** Factory for the winning strategy, for SessionOptions. */
    StrategyFactory makeStrategy() const;
};

/**
 * Choose the actuation strategy for a platform.
 *
 * Evaluates one unit of slack-free work (the power-cap scenario of
 * section 3, where t_delay = 0) at knob speedup @p speedup: racing at
 * the top frequency then dropping into the sleep state versus
 * stretching at the low-power state. Race-to-idle wins on platforms
 * whose DVFS has little voltage headroom (weak energy savings per
 * cycle) and whose sleep state is cheap — the "sufficiently low idle
 * power" platforms of the paper.
 *
 * @param power       The platform's full-system power model.
 * @param scale       The platform's frequency scale.
 * @param speedup     S(QoS), the knob speedup available (>= 1).
 * @param sleep_watts Deep-sleep power the platform reaches while
 *                    parked; negative (default) means "no sleep state
 *                    deeper than idle".
 */
PolicyAdvice advisePolicy(const sim::PowerModel &power,
                          const sim::FrequencyScale &scale,
                          double speedup, double sleep_watts = -1.0);

} // namespace powerdial::core

#endif // POWERDIAL_CORE_POLICY_ADVISOR_H
