/**
 * @file
 * The actuation seam of the control system (paper section 2.3.3).
 *
 * An ActuationStrategy converts the controller's continuous speedup
 * command into a schedule of discrete knob settings over a time
 * quantum ("heuristically established as the time required to process
 * twenty heartbeats") by picking one solution of the constraint system
 * of Equations 9-11:
 *
 *     s_max*t_max + s_min*t_min + (h/g)*t_default = 1
 *     t_max + t_min + t_default <= 1,   t_* >= 0
 *
 * Three strategies ship:
 *  - MinimalSpeedupStrategy: t_max = 0, run the slowest Pareto setting
 *    with speedup >= the command, mixed with the default setting.
 *    Lowest feasible QoS loss (the paper's server default).
 *  - RaceToIdleStrategy: t_min = t_default = 0, sprint at the fastest
 *    setting then idle. Best for platforms with low idle power.
 *  - QosBudgetStrategy: minimal-speedup planning under a cap on the
 *    *cumulative* work-weighted calibrated QoS loss of the run.
 *
 * The seam replaces the closed two-value ActuationPolicy enum of the
 * pre-Session runtime; new constraint-system solutions plug in without
 * touching the runtime loop.
 */
#ifndef POWERDIAL_CORE_ACTUATION_STRATEGY_H
#define POWERDIAL_CORE_ACTUATION_STRATEGY_H

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/response_model.h"

namespace powerdial::core {

/** One slice of an actuation plan. */
struct ActuationSlice
{
    std::size_t combination; //!< Knob combination to install.
    double fraction;         //!< Fraction of the quantum, in (0, 1].
    double speedup;          //!< Calibrated speedup of the combination.
    double qos_loss;         //!< Calibrated QoS loss of the combination.
};

/** The schedule for one time quantum. */
struct ActuationPlan
{
    std::vector<ActuationSlice> slices;
    /** Fraction of the quantum spent idle (race-to-idle only). */
    double idle_fraction = 0.0;

    /** Quantum-average speedup delivered by the plan (idle counts 0). */
    double averageSpeedup() const;

    /** Average QoS loss of the plan, weighting slices by work share. */
    double averageQosLoss() const;

    /**
     * The knob combination to run for beat @p beat (0-based within a
     * quantum of @p quantum_beats) under this plan. Slices are laid
     * out contiguously over the busy portion of the quantum.
     */
    std::size_t combinationAtBeat(std::size_t beat,
                                  std::size_t quantum_beats) const;

    /**
     * Idle time to insert per busy second (race-to-idle spreads its
     * idle slack evenly over the quantum's beats).
     */
    double idlePerBusySecond() const;
};

/**
 * A constraint-system solution: speedup command in, quantum plan out.
 *
 * Contract: begin() is called once before the first plan() of every
 * controlled run and must reset all run state (budgets, counters);
 * plan() may be stateful across quanta within one run (QosBudget is).
 */
class ActuationStrategy
{
  public:
    virtual ~ActuationStrategy() = default;

    /** Human-readable strategy name (for traces and reports). */
    virtual std::string name() const = 0;

    /**
     * Start a run against @p model (borrowed; outlives the run) with
     * @p quantum_beats heartbeats per quantum.
     */
    virtual void begin(const ResponseModel &model,
                       std::size_t quantum_beats) = 0;

    /** Build the plan realising @p speedup over the next quantum. */
    virtual ActuationPlan plan(double speedup) = 0;
};

/** Factory the Session uses to mint one strategy instance per session. */
using StrategyFactory = std::function<std::unique_ptr<ActuationStrategy>()>;

/** t_max = 0: minimal feasible QoS loss (paper default). */
class MinimalSpeedupStrategy final : public ActuationStrategy
{
  public:
    std::string name() const override;
    void begin(const ResponseModel &model,
               std::size_t quantum_beats) override;
    ActuationPlan plan(double speedup) override;

  private:
    const ResponseModel *model_ = nullptr;
};

/** t_min = t_default = 0: sprint at s_max, then idle. */
class RaceToIdleStrategy final : public ActuationStrategy
{
  public:
    std::string name() const override;
    void begin(const ResponseModel &model,
               std::size_t quantum_beats) override;
    ActuationPlan plan(double speedup) override;

  private:
    const ResponseModel *model_ = nullptr;
};

/**
 * Minimal-speedup planning under a cumulative QoS-loss budget.
 *
 * The strategy tracks the work-weighted calibrated QoS loss its plans
 * have spent so far and guarantees the running mean never exceeds
 * @p mean_qos_budget: each quantum may spend at most the unspent
 * allowance accumulated at budget rate (unused allowance banks). When
 * the commanded speedup would overspend, the command is clamped to the
 * fastest mix affordable within the allowance.
 */
class QosBudgetStrategy final : public ActuationStrategy
{
  public:
    explicit QosBudgetStrategy(double mean_qos_budget);

    std::string name() const override;
    void begin(const ResponseModel &model,
               std::size_t quantum_beats) override;
    ActuationPlan plan(double speedup) override;

    /** Mean work-weighted QoS loss spent so far this run. */
    double meanSpent() const;
    double budget() const { return budget_; }

  private:
    double budget_;
    const ResponseModel *model_ = nullptr;
    double spent_ = 0.0;       //!< Sum of per-quantum plan losses.
    std::size_t quanta_ = 0;   //!< Quanta planned so far.
};

/** Factory helpers for SessionOptions. */
StrategyFactory makeMinimalSpeedupStrategy();
StrategyFactory makeRaceToIdleStrategy();
StrategyFactory makeQosBudgetStrategy(double mean_qos_budget);

} // namespace powerdial::core

#endif // POWERDIAL_CORE_ACTUATION_STRATEGY_H
