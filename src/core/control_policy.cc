#include "core/control_policy.h"

#include <algorithm>
#include <stdexcept>

namespace powerdial::core {

// ---------------------------------------------------------------------------
// DeadbeatPolicy
// ---------------------------------------------------------------------------

DeadbeatPolicy::DeadbeatPolicy(double gain) : gain_(gain)
{
    if (gain_ <= 0.0)
        throw std::invalid_argument("DeadbeatPolicy: gain must be > 0");
}

std::string
DeadbeatPolicy::name() const
{
    return gain_ == 1.0 ? "deadbeat" : "integral";
}

void
DeadbeatPolicy::begin(const ControlSetup &setup)
{
    ControllerConfig cc;
    cc.baseline_rate = setup.baseline_rate;
    cc.target_rate = setup.target_rate;
    cc.gain = gain_;
    cc.min_speedup = setup.min_speedup;
    cc.max_speedup = setup.max_speedup;
    law_ = std::make_unique<HeartRateController>(cc);
}

double
DeadbeatPolicy::update(double observed_rate)
{
    if (law_ == nullptr)
        throw std::logic_error("DeadbeatPolicy: update before begin");
    return law_->update(observed_rate);
}

// ---------------------------------------------------------------------------
// PidPolicy
// ---------------------------------------------------------------------------

PidPolicy::PidPolicy(const PidGains &gains) : gains_(gains)
{
    if (gains_.ki <= 0.0)
        throw std::invalid_argument("PidPolicy: ki must be > 0");
    if (gains_.kp < 0.0 || gains_.kd < 0.0)
        throw std::invalid_argument("PidPolicy: kp/kd must be >= 0");
}

std::string
PidPolicy::name() const
{
    return "pid";
}

void
PidPolicy::begin(const ControlSetup &setup)
{
    if (setup.baseline_rate <= 0.0)
        throw std::invalid_argument("PidPolicy: baseline rate must be > 0");
    if (setup.target_rate <= 0.0)
        throw std::invalid_argument("PidPolicy: target rate must be > 0");
    if (setup.max_speedup < setup.min_speedup)
        throw std::invalid_argument("PidPolicy: max < min speedup");
    setup_ = setup;
    integral_ = 0.0;
    prev_error_ = 0.0;
    has_prev_ = false;
}

double
PidPolicy::update(double observed_rate)
{
    if (setup_.baseline_rate <= 0.0)
        throw std::logic_error("PidPolicy: update before begin");
    const double error = setup_.target_rate - observed_rate;
    integral_ += error;
    const double derivative = has_prev_ ? error - prev_error_ : 0.0;
    prev_error_ = error;
    has_prev_ = true;

    const double b = setup_.baseline_rate;
    double s = setup_.min_speedup +
               (gains_.kp * error + gains_.ki * integral_ +
                gains_.kd * derivative) /
                   b;
    // Anti-windup: pull the integral back so the command it implies
    // stays within the actuation range (the paper's clamp on s(t)
    // serves the same purpose for the pure integral law).
    if (s > setup_.max_speedup) {
        integral_ -=
            (s - setup_.max_speedup) * b / gains_.ki;
        s = setup_.max_speedup;
    } else if (s < setup_.min_speedup) {
        integral_ -=
            (s - setup_.min_speedup) * b / gains_.ki;
        s = setup_.min_speedup;
    }
    return s;
}

// ---------------------------------------------------------------------------
// GainScheduledPolicy
// ---------------------------------------------------------------------------

GainScheduledPolicy::GainScheduledPolicy(const GainScheduleConfig &config)
    : config_(config)
{
    if (config_.estimate_alpha <= 0.0 || config_.estimate_alpha > 1.0)
        throw std::invalid_argument(
            "GainScheduledPolicy: alpha must be in (0, 1]");
    if (config_.gain <= 0.0)
        throw std::invalid_argument(
            "GainScheduledPolicy: gain must be > 0");
    if (config_.min_scale <= 0.0 || config_.max_scale < config_.min_scale)
        throw std::invalid_argument(
            "GainScheduledPolicy: bad estimate clamp");
}

std::string
GainScheduledPolicy::name() const
{
    return "gain-scheduled";
}

void
GainScheduledPolicy::begin(const ControlSetup &setup)
{
    if (setup.baseline_rate <= 0.0)
        throw std::invalid_argument(
            "GainScheduledPolicy: baseline rate must be > 0");
    if (setup.target_rate <= 0.0)
        throw std::invalid_argument(
            "GainScheduledPolicy: target rate must be > 0");
    if (setup.max_speedup < setup.min_speedup)
        throw std::invalid_argument(
            "GainScheduledPolicy: max < min speedup");
    setup_ = setup;
    speedup_ = setup.min_speedup;
    b_hat_ = setup.baseline_rate; // Start from the calibrated model.
}

double
GainScheduledPolicy::update(double observed_rate)
{
    if (setup_.baseline_rate <= 0.0)
        throw std::logic_error(
            "GainScheduledPolicy: update before begin");
    // Refresh the plant-gain estimate from the last commanded speedup:
    // the Equation 2 model says h = b_eff * s, so h/s observes b_eff.
    if (speedup_ > 0.0 && observed_rate > 0.0) {
        const double sample = observed_rate / speedup_;
        b_hat_ = config_.estimate_alpha * sample +
                 (1.0 - config_.estimate_alpha) * b_hat_;
        b_hat_ = std::clamp(
            b_hat_, config_.min_scale * setup_.baseline_rate,
            config_.max_scale * setup_.baseline_rate);
    }
    const double error = setup_.target_rate - observed_rate;
    speedup_ += config_.gain * error / b_hat_;
    speedup_ =
        std::clamp(speedup_, setup_.min_speedup, setup_.max_speedup);
    return speedup_;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

PolicyFactory
makeDeadbeatPolicy(double gain)
{
    return [gain] { return std::make_unique<DeadbeatPolicy>(gain); };
}

PolicyFactory
makePidPolicy(const PidGains &gains)
{
    return [gains] { return std::make_unique<PidPolicy>(gains); };
}

PolicyFactory
makeGainScheduledPolicy(const GainScheduleConfig &config)
{
    return
        [config] { return std::make_unique<GainScheduledPolicy>(config); };
}

} // namespace powerdial::core
