/**
 * @file
 * CSV export of controlled-run traces and power samples.
 *
 * The paper's figures are time series (Figure 7) and sampled power
 * (Figures 6, 8). This exporter renders a ControlledRun's beat trace
 * and a machine's metered power into CSV so the figures can be
 * re-plotted with any external tool.
 */
#ifndef POWERDIAL_CORE_TRACE_EXPORT_H
#define POWERDIAL_CORE_TRACE_EXPORT_H

#include <ostream>

#include "core/runtime.h"
#include "sim/energy_meter.h"

namespace powerdial::core {

/**
 * Write a beat trace as CSV with header:
 * `beat,time_s,window_rate,normalized_perf,commanded_speedup,
 *  knob_gain,combination,pstate`.
 *
 * @param decimate Keep every n-th beat (1 = all). Must be >= 1.
 */
void writeBeatsCsv(std::ostream &os, const ControlledRun &run,
                   std::size_t decimate = 1);

/**
 * Write power samples as CSV with header `time_s,watts`.
 */
void writePowerCsv(std::ostream &os,
                   const std::vector<sim::PowerSample> &samples);

} // namespace powerdial::core

#endif // POWERDIAL_CORE_TRACE_EXPORT_H
