/**
 * @file
 * CSV export of controlled-run traces and power samples.
 *
 * The paper's figures are time series (Figure 7) and sampled power
 * (Figures 6, 8). Two export paths ship:
 *
 *  - writeBeatsCsv renders an already-recorded beat series (from a
 *    BeatTraceRecorder) in one pass;
 *  - CsvTraceObserver streams the same rows through the RunObserver
 *    seam as the run executes, so long runs never hold their full
 *    trace in memory.
 *
 * Both produce identical bytes for the same run (tested).
 */
#ifndef POWERDIAL_CORE_TRACE_EXPORT_H
#define POWERDIAL_CORE_TRACE_EXPORT_H

#include <ostream>

#include "core/run_observer.h"
#include "sim/energy_meter.h"

namespace powerdial::core {

/**
 * Write a beat series as CSV with header:
 * `beat,time_s,window_rate,normalized_perf,commanded_speedup,
 *  knob_gain,combination,pstate`.
 *
 * @param decimate Keep every n-th beat (1 = all). Must be >= 1.
 */
void writeBeatsCsv(std::ostream &os,
                   const std::vector<BeatTrace> &beats,
                   std::size_t decimate = 1);

/**
 * Streaming CSV exporter on the observer seam: writes the header at
 * run start and one row per (decimated) beat as it happens. The
 * stream must outlive the observer's session.
 */
class CsvTraceObserver final : public RunObserver
{
  public:
    /** @param decimate Keep every n-th beat (1 = all). Must be >= 1. */
    explicit CsvTraceObserver(std::ostream &os, std::size_t decimate = 1);

    void onRunStart(const RunStartEvent &event) override;
    void onBeat(const BeatEvent &event) override;

  private:
    std::ostream *os_;
    std::size_t decimate_;
};

/**
 * Write power samples as CSV with header `time_s,watts`.
 */
void writePowerCsv(std::ostream &os,
                   const std::vector<sim::PowerSample> &samples);

} // namespace powerdial::core

#endif // POWERDIAL_CORE_TRACE_EXPORT_H
