/**
 * @file
 * The calibrated knob response model.
 *
 * Output of dynamic knob calibration (paper section 2.2): for every knob
 * combination, its mean speedup and mean QoS loss over the training
 * inputs, relative to the baseline (highest-QoS) combination; plus the
 * Pareto-optimal subset the control system actuates over.
 */
#ifndef POWERDIAL_CORE_RESPONSE_MODEL_H
#define POWERDIAL_CORE_RESPONSE_MODEL_H

#include <cstddef>
#include <vector>

#include "core/pareto.h"

namespace powerdial::core {

/** Calibrated trade-off model for one application. */
class ResponseModel
{
  public:
    ResponseModel() = default;

    /**
     * @param all_points        Every calibrated combination.
     * @param baseline          The baseline (highest-QoS) combination.
     * @param baseline_seconds  Mean baseline execution time (training).
     * @param baseline_rate     Mean baseline heart rate, beats/second.
     * @param qos_cap           Optional cap on admissible QoS loss
     *                          (paper section 2.2); points above the cap
     *                          are excluded from the Pareto frontier.
     */
    ResponseModel(std::vector<OperatingPoint> all_points,
                  std::size_t baseline, double baseline_seconds,
                  double baseline_rate,
                  double qos_cap = -1.0);

    /** Every calibrated operating point (training means). */
    const std::vector<OperatingPoint> &allPoints() const { return all_; }

    /** Pareto frontier, ascending speedup. Always contains baseline. */
    const std::vector<OperatingPoint> &pareto() const { return pareto_; }

    /** The baseline combination index. */
    std::size_t baselineCombination() const { return baseline_; }

    /** Mean baseline execution time over the training inputs, seconds. */
    double baselineSeconds() const { return baseline_seconds_; }

    /** Mean baseline heart rate, beats/second. */
    double baselineRate() const { return baseline_rate_; }

    /** Largest Pareto speedup. */
    double maxSpeedup() const;

    /**
     * The slowest Pareto point with speedup >= @p speedup — the
     * "minimum speedup s_min >= g/h" of the actuation policy
     * (paper section 2.3.3). Returns the fastest point if none qualify.
     */
    const OperatingPoint &atLeast(double speedup) const;

    /** The fastest Pareto point (s_max). */
    const OperatingPoint &fastest() const;

    /** The baseline operating point (speedup 1, qos 0 by construction). */
    const OperatingPoint &baselinePoint() const;

    /**
     * The fastest Pareto point whose QoS loss is <= @p qos_bound —
     * S(QoS) of the analytical models (paper section 3).
     */
    const OperatingPoint &bestWithinQoS(double qos_bound) const;

    /** Linear interpolation of QoS loss at @p speedup on the frontier. */
    double qosLossAtSpeedup(double speedup) const;

  private:
    std::vector<OperatingPoint> all_;
    std::vector<OperatingPoint> pareto_;
    std::size_t baseline_ = 0;
    double baseline_seconds_ = 0.0;
    double baseline_rate_ = 0.0;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_RESPONSE_MODEL_H
