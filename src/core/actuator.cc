#include "core/actuator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerdial::core {

double
ActuationPlan::averageSpeedup() const
{
    double avg = 0.0;
    for (const auto &s : slices)
        avg += s.speedup * s.fraction;
    return avg;
}

double
ActuationPlan::averageQosLoss() const
{
    // QoS loss accrues per unit of *output*: a slice at speedup s
    // produces s * fraction units of work, so weight by work share.
    double work = 0.0;
    double weighted = 0.0;
    for (const auto &s : slices) {
        work += s.fraction * s.speedup;
        weighted += s.fraction * s.speedup * s.qos_loss;
    }
    return work > 0.0 ? weighted / work : 0.0;
}

Actuator::Actuator(const ResponseModel &model, ActuationPolicy policy,
                   std::size_t quantum_beats)
    : model_(&model), policy_(policy), quantum_beats_(quantum_beats)
{
    if (quantum_beats_ == 0)
        throw std::invalid_argument("Actuator: quantum must be >= 1 beat");
}

ActuationPlan
Actuator::plan(double speedup) const
{
    ActuationPlan out;
    const auto &base = model_->baselinePoint();
    const double s_cmd = std::max(speedup, base.speedup);

    if (policy_ == ActuationPolicy::RaceToIdle) {
        // t_min = t_default = 0: sprint at s_max, idle the rest.
        const auto &fast = model_->fastest();
        const double frac = std::min(1.0, s_cmd / fast.speedup);
        out.slices.push_back(
            {fast.combination, frac, fast.speedup, fast.qos_loss});
        out.idle_fraction = 1.0 - frac;
        return out;
    }

    // MinimalSpeedup: t_max = 0. Find the slowest Pareto point with
    // speedup >= command (s_min of the paper), mix with the default
    // setting so the quantum average equals the command.
    const auto &hi = model_->atLeast(s_cmd);
    if (hi.speedup <= s_cmd || hi.combination == base.combination) {
        // Command at or above s_max (run flat out), or command within
        // rounding of the baseline.
        out.slices.push_back(
            {hi.combination, 1.0, hi.speedup, hi.qos_loss});
        return out;
    }
    if (s_cmd <= base.speedup) {
        out.slices.push_back(
            {base.combination, 1.0, base.speedup, base.qos_loss});
        return out;
    }
    const double t_min =
        (s_cmd - base.speedup) / (hi.speedup - base.speedup);
    const double t_default = 1.0 - t_min;
    if (t_min > 0.0)
        out.slices.push_back(
            {hi.combination, t_min, hi.speedup, hi.qos_loss});
    if (t_default > 0.0)
        out.slices.push_back(
            {base.combination, t_default, base.speedup, base.qos_loss});
    return out;
}

std::size_t
Actuator::combinationForBeat(const ActuationPlan &plan,
                             std::size_t beat) const
{
    if (plan.slices.empty())
        throw std::logic_error("Actuator: empty plan");
    const double pos = (static_cast<double>(beat % quantum_beats_) + 0.5) /
                       static_cast<double>(quantum_beats_);
    // Beats are laid out over the busy portion of the quantum.
    const double busy = 1.0 - plan.idle_fraction;
    double acc = 0.0;
    for (const auto &s : plan.slices) {
        acc += s.fraction / (busy > 0.0 ? busy : 1.0);
        if (pos * 1.0 <= acc * 1.0 + 1e-12)
            return s.combination;
    }
    return plan.slices.back().combination;
}

double
Actuator::idlePerBusySecond(const ActuationPlan &plan) const
{
    const double busy = 1.0 - plan.idle_fraction;
    if (busy <= 0.0)
        return 0.0;
    return plan.idle_fraction / busy;
}

} // namespace powerdial::core
