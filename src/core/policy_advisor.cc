#include "core/policy_advisor.h"

#include <stdexcept>

#include "core/analytical.h"

namespace powerdial::core {

StrategyFactory
PolicyAdvice::makeStrategy() const
{
    return race_to_idle_wins ? makeRaceToIdleStrategy()
                             : makeMinimalSpeedupStrategy();
}

PolicyAdvice
advisePolicy(const sim::PowerModel &power,
             const sim::FrequencyScale &scale, double speedup,
             double sleep_watts)
{
    if (speedup < 1.0)
        throw std::invalid_argument("advisePolicy: speedup < 1");
    if (sleep_watts < 0.0)
        sleep_watts = power.idleWatts(); // No deep-sleep state.

    const double f_hi = scale.maxHz();
    const double f_lo = scale.minHz();
    const double p_hi = power.watts(f_hi, 1.0);
    const double p_lo = power.watts(f_lo, 1.0);

    // One second of work at the top frequency; the shared latency
    // budget is the DVFS-stretched completion time t2 (section 3 with
    // t_delay = 0). Slack time is spent in the sleep state.
    const double t1 = 1.0;
    const double t2 = analytical::stretchedTime(t1, f_hi, f_lo);
    const double t1p = t1 / speedup; // Equation 13.
    const double t2p = t2 / speedup; // Equation 15.

    PolicyAdvice advice{};
    advice.race_energy_j =
        p_hi * t1p + sleep_watts * (t2 - t1p); // Equation 14.
    advice.stretch_energy_j =
        p_lo * t2p + sleep_watts * (t2 - t2p); // Equation 16.
    advice.race_to_idle_wins =
        advice.race_energy_j < advice.stretch_energy_j;
    advice.strategy_name =
        advice.race_to_idle_wins ? "race-to-idle" : "minimal-speedup";

    // Sleep power at which the strategies break even:
    // (p_hi - P_s) t1p = (p_lo - P_s) t2p  =>
    // P_s = (p_hi t1p - p_lo t2p) / (t1p - t2p).
    const double breakeven =
        (p_hi * t1p - p_lo * t2p) / (t1p - t2p);
    advice.breakeven_sleep_watts = breakeven;
    advice.breakeven_idle_fraction = breakeven / p_hi;
    return advice;
}

} // namespace powerdial::core
