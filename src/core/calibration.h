/**
 * @file
 * Dynamic knob calibration (paper section 2.2).
 *
 * For each combination of parameter settings the calibrator executes
 * every training input on a fresh simulated machine, records the mean
 * speedup (baseline execution time / combination execution time) and
 * the mean QoS loss (distortion of the output abstraction against the
 * baseline execution, Equation 1), and builds the ResponseModel whose
 * Pareto frontier the control system actuates over.
 */
#ifndef POWERDIAL_CORE_CALIBRATION_H
#define POWERDIAL_CORE_CALIBRATION_H

#include <vector>

#include "core/app.h"
#include "core/response_model.h"

namespace powerdial::core {

/** Measured execution of one (input, combination) pair. */
struct RunMeasurement
{
    double seconds = 0.0; //!< Virtual execution time.
    qos::OutputAbstraction output;
};

/**
 * Execute @p app on input @p input with knob combination @p combination
 * held fixed (no control system), on a fresh machine configured by
 * @p config at P-state 0. The building block of calibration and of the
 * trade-off figures.
 */
RunMeasurement runFixed(App &app, std::size_t input,
                        std::size_t combination,
                        const sim::Machine::Config &config = {});

/** Calibration options. */
struct CalibrationOptions
{
    /** Machine the training runs execute on. */
    sim::Machine::Config machine{};
    /**
     * Cap on admissible QoS loss; combinations above the cap are
     * excluded from the Pareto frontier (paper section 2.2). Negative
     * means no cap.
     */
    double qos_cap = -1.0;
    /**
     * Worker threads for the calibration sweep: 1 (the default) runs
     * the sweep serially on the caller's app; 0 uses
     * std::thread::hardware_concurrency(); N > 1 fans the independent
     * (combination, input) runs out over N workers, each owning a
     * private App::clone(). The result is bit-identical to the serial
     * path regardless of the thread count.
     */
    std::size_t threads = 1;
};

/** Per-combination, per-input raw calibration data (for Table 2). */
struct CalibrationData
{
    /** speedups[combination][input_position]. */
    std::vector<std::vector<double>> speedups;
    /** qos_losses[combination][input_position]. */
    std::vector<std::vector<double>> qos_losses;
};

/** Full calibration output. */
struct CalibrationResult
{
    ResponseModel model;
    CalibrationData data;
};

/**
 * Calibrate @p app over @p inputs (indices into the app's input set).
 */
CalibrationResult calibrate(App &app,
                            const std::vector<std::size_t> &inputs,
                            const CalibrationOptions &options = {});

/**
 * Pearson correlation coefficient between two equally sized samples —
 * Table 2 reports this between training and production means.
 * Returns 1.0 for degenerate (zero-variance) inputs that are equal.
 */
double correlation(const std::vector<double> &a,
                   const std::vector<double> &b);

} // namespace powerdial::core

#endif // POWERDIAL_CORE_CALIBRATION_H
