#include "core/runtime.h"

#include <stdexcept>

namespace powerdial::core {

Runtime::Runtime(App &app, const KnobTable &table,
                 const ResponseModel &model, const RuntimeOptions &options)
    : app_(&app), table_(&table), model_(&model), options_(options)
{
    if (options_.quantum_beats == 0)
        throw std::invalid_argument("Runtime: quantum must be >= 1");
    if (options_.window == 0)
        throw std::invalid_argument("Runtime: window must be >= 1");
}

ControlledRun
Runtime::run(std::size_t input, sim::Machine &machine,
             sim::DvfsGovernor *governor)
{
    const double target = options_.target_rate > 0.0
        ? options_.target_rate
        : model_->baselineRate();

    // Paper setup: min and max target are both the baseline rate.
    hb::Monitor monitor(options_.window, {target, target});

    ControllerConfig cc;
    cc.baseline_rate = model_->baselineRate();
    cc.target_rate = target;
    cc.gain = options_.gain;
    cc.min_speedup = model_->baselinePoint().speedup;
    cc.max_speedup = model_->maxSpeedup();
    HeartRateController controller(cc);

    Actuator actuator(*model_, options_.policy, options_.quantum_beats);

    // Start at the baseline (highest QoS) setting, like the paper.
    const std::size_t baseline = model_->baselineCombination();
    app_->configure(app_->knobSpace().valuesOf(baseline));
    app_->loadInput(input);

    ActuationPlan plan;
    plan.slices.push_back({baseline, 1.0, model_->baselinePoint().speedup,
                           model_->baselinePoint().qos_loss});

    ControlledRun result;
    const double start = machine.now();
    const std::size_t units = app_->unitCount();
    result.beats.reserve(units);

    std::size_t applied = baseline;
    double commanded = cc.min_speedup;
    double qos_weighted = 0.0;
    double qos_work = 0.0;

    for (std::size_t u = 0; u < units; ++u) {
        // Main control loop: heartbeat at the top of the loop.
        monitor.beat(machine.now());
        if (governor != nullptr)
            governor->poll(machine);

        // Quantum boundary: run the controller and re-plan.
        if (options_.knobs_enabled && u > 0 &&
            u % options_.quantum_beats == 0) {
            const double rate = monitor.windowRate();
            if (rate > 0.0) {
                commanded = controller.update(rate);
                plan = actuator.plan(commanded);
            }
        }

        const std::size_t combo = options_.knobs_enabled
            ? actuator.combinationForBeat(plan,
                                          u % options_.quantum_beats)
            : baseline;
        if (combo != applied) {
            table_->apply(combo);
            applied = combo;
        }

        const double before = machine.now();
        app_->processUnit(u, machine);
        const double busy = machine.now() - before;

        // Race-to-idle: insert the plan's idle slack after the work.
        const double idle_ratio = options_.knobs_enabled
            ? actuator.idlePerBusySecond(plan)
            : 0.0;
        if (idle_ratio > 0.0)
            machine.idleFor(idle_ratio * busy);

        // Account the calibrated QoS loss of the installed setting,
        // weighted by the work (one unit) it produced.
        double combo_qos = 0.0;
        double combo_speedup = 1.0;
        for (const auto &p : model_->allPoints()) {
            if (p.combination == applied) {
                combo_qos = p.qos_loss;
                combo_speedup = p.speedup;
                break;
            }
        }
        qos_weighted += combo_qos;
        qos_work += 1.0;

        BeatTrace bt;
        bt.time_s = machine.now();
        bt.window_rate = monitor.windowRate();
        bt.normalized_perf =
            target > 0.0 ? bt.window_rate / target : 0.0;
        bt.commanded_speedup = commanded;
        bt.knob_gain = combo_speedup;
        bt.combination = applied;
        bt.pstate = machine.pstate();
        result.beats.push_back(bt);
    }

    result.seconds = machine.now() - start;
    result.output = app_->output();
    result.mean_qos_loss_estimate =
        qos_work > 0.0 ? qos_weighted / qos_work : 0.0;
    return result;
}

} // namespace powerdial::core
