#include "core/analytical.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerdial::core::analytical {

double
energyNoDvfs(const DvfsPowers &p, const TaskTiming &t)
{
    return p.p_nodvfs * t.t1 + p.p_idle * t.t_delay;
}

double
energyDvfs(const DvfsPowers &p, const TaskTiming &t)
{
    const double t2 = t.t1 + t.t_delay;
    return p.p_dvfs * t2;
}

double
dvfsSavings(const DvfsPowers &p, const TaskTiming &t)
{
    return energyNoDvfs(p, t) - energyDvfs(p, t);
}

double
stretchedTime(double t1, double f_nodvfs, double f_dvfs)
{
    if (f_dvfs <= 0.0 || f_nodvfs <= 0.0)
        throw std::invalid_argument("stretchedTime: bad frequencies");
    return (f_nodvfs / f_dvfs) * t1;
}

double
energyElasticDvfs(const DvfsPowers &p, const TaskTiming &t, double speedup)
{
    if (speedup < 1.0)
        throw std::invalid_argument("energyElasticDvfs: speedup < 1");
    const double t2 = t.t1 + t.t_delay;

    // Equation 13-14: race-to-idle at the high frequency.
    const double t1p = t.t1 / speedup;
    const double tdelayp = t.t_delay + t.t1 - t1p;
    const double e1 = p.p_nodvfs * t1p + p.p_idle * tdelayp;

    // Equation 15-16: run at the low-power state.
    const double t2p = t2 / speedup;
    const double tdelaypp = t2 - t2p;
    const double e2 = p.p_dvfs * t2p + p.p_idle * tdelaypp;

    // Equation 17.
    return std::min(e1, e2);
}

double
elasticSavings(const DvfsPowers &p, const TaskTiming &t, double speedup)
{
    // Equation 18: the better of plain-speed-then-idle and DVFS.
    const double e_dvfs = std::min(energyNoDvfs(p, t), energyDvfs(p, t));
    // Equation 19.
    return e_dvfs - energyElasticDvfs(p, t, speedup);
}

ConsolidationResult
consolidate(const ConsolidationModel &model)
{
    if (model.n_orig == 0)
        throw std::invalid_argument("consolidate: no machines");
    if (model.speedup < 1.0)
        throw std::invalid_argument("consolidate: speedup < 1");
    if (model.u_orig < 0.0 || model.u_orig > 1.0)
        throw std::invalid_argument("consolidate: bad utilisation");

    ConsolidationResult r{};
    // Equation 20: W_total = W_machine * N_orig.
    const double w_total =
        model.work_per_machine * static_cast<double>(model.n_orig);
    // Equation 21: N_new = ceil(W_total / S(QoS) / W_machine).
    r.n_new = static_cast<std::size_t>(std::ceil(
        w_total / model.speedup / model.work_per_machine));
    r.n_new = std::max<std::size_t>(r.n_new, 1);

    // U_new = N_orig / N_new * U_orig capped at 1: the same offered work
    // concentrates on fewer machines.
    r.u_new = std::min(1.0, model.u_orig *
                                static_cast<double>(model.n_orig) /
                                static_cast<double>(r.n_new));

    // Equations 22-24.
    r.p_orig_watts = static_cast<double>(model.n_orig) *
                     (model.u_orig * model.p_load +
                      (1.0 - model.u_orig) * model.p_idle);
    r.p_new_watts = static_cast<double>(r.n_new) *
                    (r.u_new * model.p_load +
                     (1.0 - r.u_new) * model.p_idle);
    r.p_save_watts = r.p_orig_watts - r.p_new_watts;
    return r;
}

} // namespace powerdial::core::analytical
