/**
 * @file
 * The speedup-law seam of the control system (paper section 2.3.2).
 *
 * A ControlPolicy converts observed heart rates into speedup commands.
 * The paper's deadbeat integral law (HeartRateController, Equations
 * 3-4) is the default implementation; a PID generalisation and a
 * gain-scheduled adaptive variant ship alongside it. The Session
 * runtime owns one policy instance per run and never depends on a
 * concrete law, so new scenarios can plug in their own control laws
 * without touching the runtime loop.
 */
#ifndef POWERDIAL_CORE_CONTROL_POLICY_H
#define POWERDIAL_CORE_CONTROL_POLICY_H

#include <functional>
#include <memory>
#include <string>

#include "core/controller.h"

namespace powerdial::core {

/**
 * Per-run operating parameters handed to a policy at run start. The
 * values come from the calibrated response model and the session
 * options; the policy keeps its own tuning (gains) across runs.
 */
struct ControlSetup
{
    double baseline_rate;  //!< b: heart rate at default knobs, beats/s.
    double target_rate;    //!< g: desired heart rate, beats/s.
    double min_speedup;    //!< Actuation floor (baseline setting).
    double max_speedup;    //!< Fastest calibrated knob speedup.
};

/**
 * A speedup law: heart-rate error in, clamped speedup command out.
 *
 * Contract: begin() is called once before the first update() of every
 * controlled run and must reset all run state (integrators, estimates);
 * update() returns the speedup to apply over the next quantum, clamped
 * to [min_speedup, max_speedup] of the setup.
 */
class ControlPolicy
{
  public:
    virtual ~ControlPolicy() = default;

    /** Human-readable law name (for traces and reports). */
    virtual std::string name() const = 0;

    /** Start a run: adopt @p setup and reset all run state. */
    virtual void begin(const ControlSetup &setup) = 0;

    /**
     * One control step: observe heart rate @p observed_rate, return
     * the speedup command for the next quantum.
     */
    virtual double update(double observed_rate) = 0;
};

/** Factory the Session uses to mint one policy instance per session. */
using PolicyFactory = std::function<std::unique_ptr<ControlPolicy>()>;

/**
 * The paper's integral law (Equations 3-4), s(t) = s(t-1) + k e(t)/b,
 * delegating to HeartRateController so the arithmetic is identical to
 * the pre-Session runtime (bit-identical traces; see the equivalence
 * tests). k = 1 is the deadbeat default.
 */
class DeadbeatPolicy final : public ControlPolicy
{
  public:
    explicit DeadbeatPolicy(double gain = 1.0);

    std::string name() const override;
    void begin(const ControlSetup &setup) override;
    double update(double observed_rate) override;

    double gain() const { return gain_; }

  private:
    double gain_;
    std::unique_ptr<HeartRateController> law_;
};

/**
 * Tuning of the PID speedup law. The defaults are chosen for
 * robustness: a Jury-criterion analysis of the closed loop
 * h(t+1) = r b s(t) shows them stable for plant-gain mismatches
 * r in at least [0.4, 1.5] (the deadbeat pure-integral law with
 * ki = 1 tolerates r < 2 but reacts harder).
 */
struct PidGains
{
    double kp = 0.1;  //!< Proportional gain.
    double ki = 0.6;  //!< Integral gain (1.0, kp=kd=0 is deadbeat).
    double kd = 0.05; //!< Derivative gain.
};

/**
 * A PID generalisation of the paper's integral law:
 *
 *     s(t) = s_min + (kp e(t) + ki sum e + kd (e(t) - e(t-1))) / b
 *
 * with anti-windup: the integral term is clamped so the command stays
 * inside the actuation range. With kp = kd = 0, ki = 1 this reduces
 * exactly to the deadbeat law.
 */
class PidPolicy final : public ControlPolicy
{
  public:
    explicit PidPolicy(const PidGains &gains = {});

    std::string name() const override;
    void begin(const ControlSetup &setup) override;
    double update(double observed_rate) override;

    const PidGains &gains() const { return gains_; }

  private:
    PidGains gains_;
    ControlSetup setup_{};
    double integral_ = 0.0;
    double prev_error_ = 0.0;
    bool has_prev_ = false;
};

/** Tuning of the gain-scheduled adaptive law. */
struct GainScheduleConfig
{
    /**
     * Exponential-smoothing factor of the online baseline estimate in
     * (0, 1]; 1 trusts only the newest observation.
     */
    double estimate_alpha = 0.5;
    /** Integral gain applied against the *estimated* baseline. */
    double gain = 1.0;
    /** Clamp of the estimate as a multiple of the calibrated b. */
    double min_scale = 0.1;
    double max_scale = 10.0;
};

/**
 * A gain-scheduled (adaptive) integral law. The deadbeat law assumes
 * the plant gain is the calibrated baseline rate b; under a capacity
 * disturbance (DVFS cap, oversubscription) the true gain b_eff
 * differs and the closed-loop pole drifts to 1 - k b_eff/b. This
 * policy estimates b_eff online from (observed rate / last command)
 * and schedules the integral gain as k / b_hat, keeping the loop
 * near-deadbeat at every operating point.
 */
class GainScheduledPolicy final : public ControlPolicy
{
  public:
    explicit GainScheduledPolicy(const GainScheduleConfig &config = {});

    std::string name() const override;
    void begin(const ControlSetup &setup) override;
    double update(double observed_rate) override;

    /** Current plant-gain estimate b_hat (beats/s per unit speedup). */
    double estimatedBaseline() const { return b_hat_; }

  private:
    GainScheduleConfig config_;
    ControlSetup setup_{};
    double speedup_ = 1.0;
    double b_hat_ = 0.0;
};

/** Factory helpers for SessionOptions. */
PolicyFactory makeDeadbeatPolicy(double gain = 1.0);
PolicyFactory makePidPolicy(const PidGains &gains = {});
PolicyFactory
makeGainScheduledPolicy(const GainScheduleConfig &config = {});

} // namespace powerdial::core

#endif // POWERDIAL_CORE_CONTROL_POLICY_H
