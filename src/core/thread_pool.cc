#include "core/thread_pool.h"

#include <algorithm>

namespace powerdial::core {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    try {
        for (std::size_t w = 0; w < threads; ++w)
            workers_.emplace_back([this, w] { workerLoop(w); });
    } catch (...) {
        // Thread creation failed partway (e.g. rlimit): join the
        // workers already spawned before rethrowing, or their
        // destructors would call std::terminate.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (auto &worker : workers_)
            worker.join();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::parallelFor(std::size_t tasks, const Task &fn)
{
    if (tasks == 0)
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &fn;
    tasks_ = tasks;
    next_ = 0;
    in_flight_ = 0;
    error_ = nullptr;
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] {
        return in_flight_ == 0 && (next_ >= tasks_ || error_);
    });
    job_ = nullptr;
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::uint64_t seen = 0;
    for (;;) {
        work_cv_.wait(lock, [this, seen] {
            return stop_ || generation_ != seen;
        });
        if (stop_)
            return;
        seen = generation_;
        // Claim tasks until the job drains or a task fails (on
        // failure the remaining unclaimed tasks are abandoned).
        while (job_ != nullptr && next_ < tasks_ && !error_) {
            const std::size_t task = next_++;
            ++in_flight_;
            const Task *job = job_;
            lock.unlock();
            std::exception_ptr error;
            try {
                (*job)(task, worker);
            } catch (...) {
                error = std::current_exception();
            }
            lock.lock();
            --in_flight_;
            if (error && !error_)
                error_ = error;
        }
        if (in_flight_ == 0)
            done_cv_.notify_all();
    }
}

} // namespace powerdial::core
