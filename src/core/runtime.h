/**
 * @file
 * The PowerDial runtime control system (paper section 2.3, Figure 2).
 *
 * Composes the three components of the control system — the Application
 * Heartbeats feedback mechanism, the integral heart-rate controller,
 * and the knob actuator — around an application's main control loop.
 * Each loop iteration emits a heartbeat; every quantum (twenty beats by
 * default) the controller converts the heart-rate error into a speedup
 * command, the actuator converts it into a knob schedule, and the
 * runtime installs knob settings by writing the recorded control
 * variable values into the application's address space.
 */
#ifndef POWERDIAL_CORE_RUNTIME_H
#define POWERDIAL_CORE_RUNTIME_H

#include <optional>
#include <vector>

#include "core/actuator.h"
#include "core/app.h"
#include "core/controller.h"
#include "core/response_model.h"
#include "heartbeats/heartbeat.h"
#include "sim/dvfs_governor.h"

namespace powerdial::core {

/** Runtime configuration. */
struct RuntimeOptions
{
    ActuationPolicy policy = ActuationPolicy::MinimalSpeedup;
    std::size_t quantum_beats = 20; //!< Paper's heuristic quantum.
    double gain = 1.0;              //!< Controller gain (1 = deadbeat).
    std::size_t window = 20;        //!< Heartbeat sliding window.
    /**
     * Target heart rate; 0 means "use the calibrated baseline rate",
     * the paper's standard setup (min == max == baseline rate).
     */
    double target_rate = 0.0;
    /** If false, knobs are pinned at the default setting (the paper's
     *  "without dynamic knobs" comparison runs). */
    bool knobs_enabled = true;
};

/** Per-beat record, the raw series behind Figure 7. */
struct BeatTrace
{
    double time_s;          //!< Virtual time of the beat.
    double window_rate;     //!< Sliding-window heart rate.
    double normalized_perf; //!< window_rate / target (1.0 = on target).
    double commanded_speedup; //!< Controller output for this quantum.
    double knob_gain;       //!< Calibrated speedup of the installed combo.
    std::size_t combination;//!< Installed knob combination.
    std::size_t pstate;     //!< Machine P-state at the beat.
};

/** Result of one controlled execution. */
struct ControlledRun
{
    std::vector<BeatTrace> beats;
    qos::OutputAbstraction output;
    double seconds = 0.0;    //!< Total virtual execution time.
    double mean_qos_loss_estimate = 0.0; //!< Work-weighted calibrated
                                         //!< QoS loss of installed combos.
};

/**
 * The PowerDial runtime for one application.
 *
 * The response model and knob table must outlive the runtime.
 */
class Runtime
{
  public:
    /**
     * @param app    The heartbeat-instrumented application.
     * @param table  Recorded control-variable values + write bindings.
     * @param model  Calibrated response model.
     * @param options Control-system options.
     */
    Runtime(App &app, const KnobTable &table, const ResponseModel &model,
            const RuntimeOptions &options = {});

    /**
     * Execute input @p input to completion on @p machine under closed-
     * loop control, optionally with a DVFS governor imposing frequency
     * changes (the power-cap scenario).
     */
    ControlledRun run(std::size_t input, sim::Machine &machine,
                      sim::DvfsGovernor *governor = nullptr);

    const RuntimeOptions &options() const { return options_; }
    const ResponseModel &model() const { return *model_; }

  private:
    App *app_;
    const KnobTable *table_;
    const ResponseModel *model_;
    RuntimeOptions options_;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_RUNTIME_H
