#include "core/trace_export.h"

#include <stdexcept>

namespace powerdial::core {

void
writeBeatsCsv(std::ostream &os, const ControlledRun &run,
              std::size_t decimate)
{
    if (decimate == 0)
        throw std::invalid_argument("writeBeatsCsv: zero decimation");
    os << "beat,time_s,window_rate,normalized_perf,commanded_speedup,"
          "knob_gain,combination,pstate\n";
    for (std::size_t i = 0; i < run.beats.size(); i += decimate) {
        const auto &b = run.beats[i];
        os << i << ',' << b.time_s << ',' << b.window_rate << ','
           << b.normalized_perf << ',' << b.commanded_speedup << ','
           << b.knob_gain << ',' << b.combination << ',' << b.pstate
           << '\n';
    }
}

void
writePowerCsv(std::ostream &os,
              const std::vector<sim::PowerSample> &samples)
{
    os << "time_s,watts\n";
    for (const auto &s : samples)
        os << s.time_s << ',' << s.watts << '\n';
}

} // namespace powerdial::core
