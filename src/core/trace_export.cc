#include "core/trace_export.h"

#include <stdexcept>

namespace powerdial::core {

namespace {

const char kBeatsHeader[] =
    "beat,time_s,window_rate,normalized_perf,commanded_speedup,"
    "knob_gain,combination,pstate\n";

void
writeBeatRow(std::ostream &os, std::size_t beat, const BeatTrace &b)
{
    os << beat << ',' << b.time_s << ',' << b.window_rate << ','
       << b.normalized_perf << ',' << b.commanded_speedup << ','
       << b.knob_gain << ',' << b.combination << ',' << b.pstate
       << '\n';
}

} // namespace

void
writeBeatsCsv(std::ostream &os, const std::vector<BeatTrace> &beats,
              std::size_t decimate)
{
    if (decimate == 0)
        throw std::invalid_argument("writeBeatsCsv: zero decimation");
    os << kBeatsHeader;
    for (std::size_t i = 0; i < beats.size(); i += decimate)
        writeBeatRow(os, i, beats[i]);
}

CsvTraceObserver::CsvTraceObserver(std::ostream &os, std::size_t decimate)
    : os_(&os), decimate_(decimate)
{
    if (decimate_ == 0)
        throw std::invalid_argument("CsvTraceObserver: zero decimation");
}

void
CsvTraceObserver::onRunStart(const RunStartEvent &event)
{
    (void)event;
    *os_ << kBeatsHeader;
}

void
CsvTraceObserver::onBeat(const BeatEvent &event)
{
    if (event.beat % decimate_ == 0)
        writeBeatRow(*os_, event.beat, event.trace);
}

void
writePowerCsv(std::ostream &os,
              const std::vector<sim::PowerSample> &samples)
{
    os << "time_s,watts\n";
    for (const auto &s : samples)
        os << s.time_s << ',' << s.watts << '\n';
}

} // namespace powerdial::core
