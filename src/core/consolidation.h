/**
 * @file
 * Parallel consolidated-cluster replays (paper section 5.5).
 *
 * The consolidation experiments measure what an application instance
 * actually delivers on an oversubscribed machine: each replay pins a
 * per-instance core share, runs the full closed-loop session, and
 * reports delivered performance and QoS. Replays are mutually
 * independent, so after the Session redesign they fan out through
 * core::FanoutEngine exactly like the calibration sweep: each
 * worker task gets a private App::clone() with a rebound knob table
 * and its own simulated machine, and results merge in fixed case
 * order — the output is bit-identical to the serial path at any
 * thread count.
 */
#ifndef POWERDIAL_CORE_CONSOLIDATION_H
#define POWERDIAL_CORE_CONSOLIDATION_H

#include <cstddef>
#include <vector>

#include "core/session.h"
#include "sim/machine.h"

namespace powerdial::core {

/** One replay: an instance's operating point on a shared machine. */
struct ReplayCase
{
    /** Core share the instance receives (1.0 = dedicated core). */
    double share = 1.0;
    /** Machine-wide utilisation used for power accounting. */
    double utilization = 1.0;
};

/** What one replay delivered. */
struct ReplayOutcome
{
    double tail_mean_perf = 0.0; //!< Mean normalized perf, last half.
    double qos_loss_measured = 0.0; //!< Distortion vs baseline output.
    double qos_loss_estimate = 0.0; //!< Work-weighted calibrated loss.
    double seconds = 0.0;           //!< Virtual execution time.
    double energy_j = 0.0;          //!< Machine energy over the run.
    double mean_watts = 0.0;        //!< Mean machine power.
};

/** Options of a replay batch. */
struct ConsolidationReplayOptions
{
    /** Input index every replay processes. */
    std::size_t input = 0;
    /**
     * Worker threads: 1 (default) replays serially, 0 uses all
     * hardware contexts, N > 1 uses N workers. Outcomes are
     * bit-identical regardless of the thread count.
     */
    std::size_t threads = 1;
    /** Session composition shared by every replay. */
    SessionOptions session{};
    /** Machine configuration shared by every replay. */
    sim::Machine::Config machine{};
};

/**
 * Replay @p cases of @p app under closed-loop control and report what
 * each delivered. @p baseline is the output abstraction of the
 * uncontrolled baseline run used for the measured QoS loss.
 * The original @p app is never run — each case executes on a private
 * clone — so the caller's instance keeps its state.
 */
std::vector<ReplayOutcome>
replayConsolidation(const App &app, const KnobTable &table,
                    const ResponseModel &model,
                    const qos::OutputAbstraction &baseline,
                    const std::vector<ReplayCase> &cases,
                    const ConsolidationReplayOptions &options);

} // namespace powerdial::core

#endif // POWERDIAL_CORE_CONSOLIDATION_H
