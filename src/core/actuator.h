/**
 * @file
 * The PowerDial actuator (paper section 2.3.3).
 *
 * Converts the controller's continuous speedup command into a schedule
 * of discrete knob settings over a time quantum ("heuristically
 * established as the time required to process twenty heartbeats") by
 * solving the constraint system of Equations 9-11:
 *
 *     s_max*t_max + s_min*t_min + (h/g)*t_default = 1
 *     t_max + t_min + t_default <= 1,   t_* >= 0
 *
 * Two solutions of interest (both implemented):
 *  - MinimalSpeedup: t_max = 0, run the slowest Pareto setting with
 *    speedup >= the command, mixed with the default setting so the
 *    quantum-average speedup equals the command. Lowest feasible QoS
 *    loss.
 *  - RaceToIdle: t_min = t_default = 0, run the fastest setting for the
 *    fraction of the quantum needed, idle for the remainder. Best for
 *    platforms with low idle power.
 */
#ifndef POWERDIAL_CORE_ACTUATOR_H
#define POWERDIAL_CORE_ACTUATOR_H

#include <cstddef>
#include <vector>

#include "core/response_model.h"

namespace powerdial::core {

/** Which solution of the constraint system the actuator uses. */
enum class ActuationPolicy
{
    MinimalSpeedup, //!< t_max = 0: minimal feasible QoS loss.
    RaceToIdle,     //!< t_min = t_default = 0: sprint then idle.
};

/** One slice of an actuation plan. */
struct ActuationSlice
{
    std::size_t combination; //!< Knob combination to install.
    double fraction;         //!< Fraction of the quantum, in (0, 1].
    double speedup;          //!< Calibrated speedup of the combination.
    double qos_loss;         //!< Calibrated QoS loss of the combination.
};

/** The schedule for one time quantum. */
struct ActuationPlan
{
    std::vector<ActuationSlice> slices;
    /** Fraction of the quantum spent idle (race-to-idle only). */
    double idle_fraction = 0.0;

    /** Quantum-average speedup delivered by the plan (idle counts 0). */
    double averageSpeedup() const;

    /** Average QoS loss of the plan, weighting slices by time. */
    double averageQosLoss() const;
};

/** Converts speedup commands into per-beat knob schedules. */
class Actuator
{
  public:
    /**
     * @param model         Calibrated response model (not owned; must
     *                      outlive the actuator).
     * @param policy        Constraint-system solution to use.
     * @param quantum_beats Heartbeats per quantum (paper: 20).
     */
    Actuator(const ResponseModel &model, ActuationPolicy policy,
             std::size_t quantum_beats = 20);

    /** Build the plan realising @p speedup over the next quantum. */
    ActuationPlan plan(double speedup) const;

    /**
     * The knob combination to run for beat @p beat (0-based within the
     * quantum) under @p plan. Slices are laid out contiguously.
     */
    std::size_t combinationForBeat(const ActuationPlan &plan,
                                   std::size_t beat) const;

    /**
     * Idle time to insert at beat @p beat, as a multiple of the beat's
     * busy duration (race-to-idle spreads its idle slack evenly).
     */
    double idlePerBusySecond(const ActuationPlan &plan) const;

    std::size_t quantumBeats() const { return quantum_beats_; }
    ActuationPolicy policy() const { return policy_; }

  private:
    const ResponseModel *model_;
    ActuationPolicy policy_;
    std::size_t quantum_beats_;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_ACTUATOR_H
