#include "core/run_observer.h"

namespace powerdial::core {

void
BeatTraceRecorder::onRunStart(const RunStartEvent &event)
{
    beats_.clear();
    beats_.reserve(event.units);
}

void
BeatTraceRecorder::onBeat(const BeatEvent &event)
{
    beats_.push_back(event.trace);
}

} // namespace powerdial::core
