#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace powerdial::core {

HeartRateController::HeartRateController(const ControllerConfig &config)
    : config_(config)
{
    if (config_.baseline_rate <= 0.0)
        throw std::invalid_argument("Controller: baseline rate must be > 0");
    if (config_.target_rate <= 0.0)
        throw std::invalid_argument("Controller: target rate must be > 0");
    if (config_.max_speedup < config_.min_speedup)
        throw std::invalid_argument("Controller: max < min speedup");
    if (config_.gain <= 0.0)
        throw std::invalid_argument("Controller: gain must be > 0");
    speedup_ = std::isnan(config_.initial_speedup)
        ? config_.min_speedup
        : config_.initial_speedup;
}

double
HeartRateController::update(double observed_rate)
{
    const double error = config_.target_rate - observed_rate;
    speedup_ += config_.gain * error / config_.baseline_rate;
    speedup_ =
        std::clamp(speedup_, config_.min_speedup, config_.max_speedup);
    return speedup_;
}

void
HeartRateController::setTarget(double target_rate)
{
    if (target_rate <= 0.0)
        throw std::invalid_argument("Controller: target rate must be > 0");
    config_.target_rate = target_rate;
}

double
HeartRateController::convergencePeriods(double gain)
{
    const double pole = std::abs(closedLoopPole(gain));
    if (pole <= 0.0)
        return 0.0; // Deadbeat: converges in one period.
    if (pole >= 1.0)
        return std::numeric_limits<double>::infinity();
    return -4.0 / std::log10(pole);
}

} // namespace powerdial::core
