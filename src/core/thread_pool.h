/**
 * @file
 * A small reusable worker pool for embarrassingly parallel index
 * sweeps (parallel calibration is the first client).
 *
 * The pool owns a fixed set of worker threads for its whole lifetime;
 * parallelFor() distributes the task indices of one job dynamically
 * over them and blocks until the job drains. Workers are identified by
 * a stable index in [0, size()), which lets callers keep per-worker
 * private state (parallel calibration hands each worker its own cloned
 * App and simulated machine) without any locking of their own.
 */
#ifndef POWERDIAL_CORE_THREAD_POOL_H
#define POWERDIAL_CORE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace powerdial::core {

/** Fixed-size thread pool running one indexed job at a time. */
class ThreadPool
{
  public:
    /** fn(task, worker): one task of the current job on one worker. */
    using Task = std::function<void(std::size_t task, std::size_t worker)>;

    /**
     * Spawn the workers. @p threads == 0 means
     * std::thread::hardware_concurrency() (at least 1).
     */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Run @p fn(task, worker) for every task in [0, @p tasks),
     * distributing tasks over the workers in claim order. Blocks until
     * every claimed task has finished. If a task throws, the remaining
     * unclaimed tasks are abandoned and the first exception is
     * rethrown here once the in-flight tasks drain — the pool never
     * hangs and stays usable for the next job.
     */
    void parallelFor(std::size_t tasks, const Task &fn);

  private:
    void workerLoop(std::size_t worker);

    std::mutex mutex_;
    std::condition_variable work_cv_; //!< Signals a new job (or stop).
    std::condition_variable done_cv_; //!< Signals job completion.
    std::vector<std::thread> workers_;

    // Current job, guarded by mutex_.
    const Task *job_ = nullptr;
    std::size_t tasks_ = 0;     //!< Task count of the current job.
    std::size_t next_ = 0;      //!< Next unclaimed task index.
    std::size_t in_flight_ = 0; //!< Claimed but unfinished tasks.
    std::exception_ptr error_;  //!< First exception of the job.
    std::uint64_t generation_ = 0; //!< Bumped per job to wake workers.
    bool stop_ = false;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_THREAD_POOL_H
