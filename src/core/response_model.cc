#include "core/response_model.h"

#include <algorithm>
#include <stdexcept>

namespace powerdial::core {

ResponseModel::ResponseModel(std::vector<OperatingPoint> all_points,
                             std::size_t baseline, double baseline_seconds,
                             double baseline_rate, double qos_cap)
    : all_(std::move(all_points)), baseline_(baseline),
      baseline_seconds_(baseline_seconds), baseline_rate_(baseline_rate)
{
    if (all_.empty())
        throw std::invalid_argument("ResponseModel: no operating points");
    if (baseline_seconds_ <= 0.0 || baseline_rate_ <= 0.0)
        throw std::invalid_argument("ResponseModel: bad baseline metrics");

    std::vector<OperatingPoint> admissible;
    bool saw_baseline = false;
    for (const auto &p : all_) {
        if (p.combination == baseline_)
            saw_baseline = true;
        if (qos_cap >= 0.0 && p.qos_loss > qos_cap &&
            p.combination != baseline_) {
            continue; // Excluded by the user's QoS-loss cap.
        }
        admissible.push_back(p);
    }
    if (!saw_baseline)
        throw std::invalid_argument("ResponseModel: baseline point missing");
    pareto_ = paretoFrontier(admissible);
}

double
ResponseModel::maxSpeedup() const
{
    return fastest().speedup;
}

const OperatingPoint &
ResponseModel::fastest() const
{
    if (pareto_.empty())
        throw std::logic_error("ResponseModel: empty frontier");
    return pareto_.back();
}

const OperatingPoint &
ResponseModel::baselinePoint() const
{
    for (const auto &p : pareto_)
        if (p.combination == baseline_)
            return p;
    // The baseline may be dominated on rare degenerate frontiers; fall
    // back to the slowest Pareto point.
    return pareto_.front();
}

const OperatingPoint &
ResponseModel::atLeast(double speedup) const
{
    for (const auto &p : pareto_)
        if (p.speedup >= speedup)
            return p;
    return fastest();
}

const OperatingPoint &
ResponseModel::bestWithinQoS(double qos_bound) const
{
    const OperatingPoint *best = &baselinePoint();
    for (const auto &p : pareto_) {
        if (p.qos_loss <= qos_bound && p.speedup >= best->speedup)
            best = &p;
    }
    return *best;
}

double
ResponseModel::qosLossAtSpeedup(double speedup) const
{
    if (pareto_.empty())
        throw std::logic_error("ResponseModel: empty frontier");
    if (speedup <= pareto_.front().speedup)
        return pareto_.front().qos_loss;
    if (speedup >= pareto_.back().speedup)
        return pareto_.back().qos_loss;
    for (std::size_t i = 0; i + 1 < pareto_.size(); ++i) {
        const auto &a = pareto_[i];
        const auto &b = pareto_[i + 1];
        if (speedup >= a.speedup && speedup <= b.speedup) {
            const double span = b.speedup - a.speedup;
            if (span <= 0.0)
                return a.qos_loss;
            const double t = (speedup - a.speedup) / span;
            return a.qos_loss + t * (b.qos_loss - a.qos_loss);
        }
    }
    return pareto_.back().qos_loss;
}

} // namespace powerdial::core
