/**
 * @file
 * Analytical models of paper section 3.
 *
 * Three model families:
 *  - DVFS energy accounting for a fixed task (Equation 12, Figure 3);
 *  - combined DVFS + dynamic-knob energy savings with the race-to-idle
 *    and low-power-state strategies (Equations 13-19, Figure 4);
 *  - server consolidation: machine counts, utilisation, and power
 *    savings (Equations 20-24).
 */
#ifndef POWERDIAL_CORE_ANALYTICAL_H
#define POWERDIAL_CORE_ANALYTICAL_H

#include <cstddef>

namespace powerdial::core::analytical {

/** Platform power levels for the DVFS energy models. */
struct DvfsPowers
{
    double p_nodvfs; //!< Active power at the high frequency, watts.
    double p_dvfs;   //!< Active power at the reduced frequency, watts.
    double p_idle;   //!< Idle power, watts.
};

/** Timing of a task with a latency budget. */
struct TaskTiming
{
    double t1;      //!< Execution time at the high frequency, seconds.
    double t_delay; //!< Slack before the deadline, seconds (t2 = t1 + t_delay).
};

/** Energy to complete the task without DVFS: run at speed, then idle. */
double energyNoDvfs(const DvfsPowers &p, const TaskTiming &t);

/** Energy with DVFS stretching the task over the whole budget. */
double energyDvfs(const DvfsPowers &p, const TaskTiming &t);

/**
 * DVFS energy savings, Equation 12:
 * E_dvfs_savings = (P_nodvfs*t1 + P_idle*t_delay) - P_dvfs*t2.
 */
double dvfsSavings(const DvfsPowers &p, const TaskTiming &t);

/**
 * Predicted stretched execution time for a CPU-bound task:
 * t2 = (f_nodvfs / f_dvfs) * t1.
 */
double stretchedTime(double t1, double f_nodvfs, double f_dvfs);

/**
 * Energy with DVFS + dynamic knobs (Equations 13-17): the knob speedup
 * S(QoS) shrinks the work; the system either races to idle at the high
 * frequency (E1) or runs at the low-power state (E2) and takes the
 * cheaper of the two.
 *
 * @param speedup S(QoS) >= 1, the speedup bought by acceptable QoS loss.
 */
double energyElasticDvfs(const DvfsPowers &p, const TaskTiming &t,
                         double speedup);

/**
 * Energy savings of DVFS + knobs over plain best-of DVFS
 * (Equations 18-19).
 */
double elasticSavings(const DvfsPowers &p, const TaskTiming &t,
                      double speedup);

/** Consolidation model inputs (Equations 20-24). */
struct ConsolidationModel
{
    std::size_t n_orig;       //!< Machines in the original system.
    double work_per_machine;  //!< W_machine (work units at peak).
    double speedup;           //!< S(QoS) from the response model.
    double u_orig;            //!< Average utilisation, original system.
    double p_load;            //!< Per-machine power under load, watts.
    double p_idle;            //!< Per-machine idle power, watts.
};

/** Consolidation model outputs. */
struct ConsolidationResult
{
    std::size_t n_new;   //!< Machines after consolidation (Eq. 21).
    double u_new;        //!< Average utilisation, consolidated (=
                         //!< N_orig * U_orig / N_new scaled by speedup
                         //!< absorbed work; see implementation note).
    double p_orig_watts; //!< Average power, original system (Eq. 22).
    double p_new_watts;  //!< Average power, consolidated (Eq. 23).
    double p_save_watts; //!< Power savings (Eq. 24).
};

/** Evaluate Equations 20-24. */
ConsolidationResult consolidate(const ConsolidationModel &model);

} // namespace powerdial::core::analytical

#endif // POWERDIAL_CORE_ANALYTICAL_H
