#include "core/session.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace powerdial::core {

BeatGate
composeGates(std::vector<BeatGate> gates)
{
    std::vector<BeatGate> live;
    for (BeatGate &gate : gates)
        if (gate)
            live.push_back(std::move(gate));
    if (live.empty())
        return nullptr;
    if (live.size() == 1)
        return std::move(live.front());
    return [live = std::move(live)](BeatGateContext &ctx) {
        for (const BeatGate &gate : live)
            gate(ctx);
    };
}

BeatGate
composeGates(BeatGate first, BeatGate second)
{
    std::vector<BeatGate> gates;
    gates.push_back(std::move(first));
    gates.push_back(std::move(second));
    return composeGates(std::move(gates));
}

BeatGate
makeDutyCycleGate(double ratio)
{
    if (ratio < 0.0)
        throw std::invalid_argument(
            "makeDutyCycleGate: ratio must be >= 0");
    if (ratio == 0.0)
        return nullptr;
    return [ratio](BeatGateContext &ctx) {
        ctx.pause_per_busy += ratio;
    };
}

BeatGate
makeDutyCycleGate(std::function<double()> ratio)
{
    if (!ratio)
        throw std::invalid_argument(
            "makeDutyCycleGate: null ratio provider");
    return [ratio = std::move(ratio)](BeatGateContext &ctx) {
        const double r = ratio();
        if (r > 0.0)
            ctx.pause_per_busy += r;
    };
}

SessionOptions &
SessionOptions::withQuantum(std::size_t beats)
{
    quantum_beats = beats;
    return *this;
}

SessionOptions &
SessionOptions::withWindow(std::size_t beats)
{
    window = beats;
    return *this;
}

SessionOptions &
SessionOptions::withTargetRate(double rate)
{
    target_rate = rate;
    return *this;
}

SessionOptions &
SessionOptions::withKnobsEnabled(bool enabled)
{
    knobs_enabled = enabled;
    return *this;
}

SessionOptions &
SessionOptions::withPolicy(PolicyFactory factory)
{
    policy = std::move(factory);
    return *this;
}

SessionOptions &
SessionOptions::withStrategy(StrategyFactory factory)
{
    strategy = std::move(factory);
    return *this;
}

SessionOptions &
SessionOptions::withGovernor(sim::DvfsGovernor gov)
{
    governor = std::move(gov);
    return *this;
}

SessionOptions &
SessionOptions::withGate(BeatGate g)
{
    gate = std::move(g);
    return *this;
}

Session::Session(App &app, const KnobTable &table,
                 const ResponseModel &model, SessionOptions options)
    : app_(&app), table_(&table), model_(&model),
      options_(std::move(options))
{
    if (options_.quantum_beats == 0)
        throw std::invalid_argument("Session: quantum must be >= 1");
    if (options_.window == 0)
        throw std::invalid_argument("Session: window must be >= 1");
    policy_ = options_.policy ? options_.policy()
                              : std::make_unique<DeadbeatPolicy>();
    if (policy_ == nullptr)
        throw std::invalid_argument("Session: policy factory returned null");
    strategy_ = options_.strategy
        ? options_.strategy()
        : std::make_unique<MinimalSpeedupStrategy>();
    if (strategy_ == nullptr)
        throw std::invalid_argument(
            "Session: strategy factory returned null");
}

void
Session::observe(RunObserver &observer)
{
    observers_.push_back(&observer);
}

RunObserver &
Session::observe(std::unique_ptr<RunObserver> observer)
{
    if (observer == nullptr)
        throw std::invalid_argument("Session: null observer");
    RunObserver &ref = *observer;
    owned_observers_.push_back(std::move(observer));
    observers_.push_back(&ref);
    return ref;
}

ControlledRun
Session::run(std::size_t input, sim::Machine &machine)
{
    start(input, machine);
    auto result =
        advanceUntil(std::numeric_limits<double>::infinity());
    // An unbounded advance always completes the run.
    return *result;
}

void
Session::start(std::size_t input, sim::Machine &machine)
{
    if (state_.has_value())
        throw std::logic_error("Session: start() with a run in flight");

    RunState state;
    state.input = input;
    state.machine = &machine;
    state.target = options_.target_rate > 0.0 ? options_.target_rate
                                              : model_->baselineRate();

    // Paper setup: min and max target are both the baseline rate.
    state.monitor.emplace(options_.window,
                          hb::HeartRateTarget{state.target, state.target});

    ControlSetup setup;
    setup.baseline_rate = model_->baselineRate();
    setup.target_rate = state.target;
    setup.min_speedup = model_->baselinePoint().speedup;
    setup.max_speedup = model_->maxSpeedup();
    policy_->begin(setup);
    strategy_->begin(*model_, options_.quantum_beats);

    // Rewind the owned governor with its schedule re-anchored at this
    // run's start time, so a powerCap built against t = 0 replays
    // correctly even when the machine carries time over from a
    // previous run.
    if (options_.governor.has_value())
        options_.governor->reset(machine.now());

    // Start at the baseline (highest QoS) setting, like the paper.
    state.baseline = model_->baselineCombination();
    app_->configure(app_->knobSpace().valuesOf(state.baseline));
    app_->loadInput(input);

    state.plan.slices.push_back({state.baseline, 1.0,
                                 model_->baselinePoint().speedup,
                                 model_->baselinePoint().qos_loss});

    state.start_time_s = machine.now();
    state.units = app_->unitCount();
    state.applied = state.baseline;
    state.commanded = setup.min_speedup;
    state_ = std::move(state);
    lookupCombo(state_->applied);

    if (!observers_.empty()) {
        RunStartEvent event;
        event.app_name = app_->name();
        event.input = input;
        event.units = state_->units;
        event.target_rate = state_->target;
        event.start_time_s = state_->start_time_s;
        for (RunObserver *observer : observers_)
            observer->onRunStart(event);
    }
}

void
Session::lookupCombo(std::size_t combo)
{
    state_->combo_qos = 0.0;
    state_->combo_speedup = 1.0;
    for (const auto &p : model_->allPoints()) {
        if (p.combination == combo) {
            state_->combo_qos = p.qos_loss;
            state_->combo_speedup = p.speedup;
            break;
        }
    }
}

std::optional<ControlledRun>
Session::advanceUntil(double deadline_s)
{
    if (!state_.has_value())
        throw std::logic_error(
            "Session: advanceUntil() without a run in flight");
    RunState &state = *state_;
    sim::Machine &machine = *state.machine;
    sim::DvfsGovernor *governor = options_.governor.has_value()
        ? &*options_.governor
        : nullptr;

    while (state.unit < state.units && machine.now() < deadline_s) {
        const std::size_t u = state.unit;
        // Main control loop: heartbeat at the top of the loop.
        state.monitor->beat(machine.now());
        if (governor != nullptr)
            governor->poll(machine);

        // External arbitration gate: an outside agent (e.g. the fleet
        // power arbiter) may pause this tenant or re-actuate the
        // machine before the unit's work runs.
        double gate_pause_per_busy = 0.0;
        if (options_.gate) {
            BeatGateContext gate_ctx{u, machine};
            options_.gate(gate_ctx);
            if (gate_ctx.pause_seconds > 0.0) {
                machine.idleFor(gate_ctx.pause_seconds);
                state.result.pause_s += gate_ctx.pause_seconds;
            }
            gate_pause_per_busy = gate_ctx.pause_per_busy;
        }

        // Quantum boundary: run the policy and re-plan.
        if (options_.knobs_enabled && u > 0 &&
            u % options_.quantum_beats == 0) {
            const double rate = state.monitor->windowRate();
            if (rate > 0.0) {
                state.commanded = policy_->update(rate);
                state.plan = strategy_->plan(state.commanded);
                if (!observers_.empty()) {
                    const QuantumEvent event{u, rate, state.commanded,
                                             state.plan,
                                             machine.now()};
                    for (RunObserver *observer : observers_)
                        observer->onQuantum(event);
                }
            }
        }

        const std::size_t combo = options_.knobs_enabled
            ? state.plan.combinationAtBeat(u % options_.quantum_beats,
                                           options_.quantum_beats)
            : state.baseline;
        if (combo != state.applied) {
            table_->apply(combo);
            state.applied = combo;
            lookupCombo(state.applied);
        }

        const double before = machine.now();
        app_->processUnit(u, machine);
        const double busy = machine.now() - before;

        // Latency-breakdown bookkeeping: split the unit's wall time
        // into co-tenancy queueing (the share the machine gave away),
        // sub-nominal-speed deficit (running below the machine's
        // nominal P-state-0 effective rate), and pure service.
        {
            const double share = machine.share();
            state.result.queue_share_s += busy * (1.0 - share);
            const double effective = busy * share;
            const double nominal = machine.scale().frequencyHz(0);
            const double speed_ratio = nominal > 0.0
                ? std::min(1.0, machine.effectiveHz() / nominal)
                : 1.0;
            state.result.service_s += effective * speed_ratio;
            state.result.class_deficit_s +=
                effective * (1.0 - speed_ratio);
        }

        // Race-to-idle: insert the plan's idle slack after the work,
        // then any externally imposed duty-cycle slack from the gate.
        const double idle_ratio = options_.knobs_enabled
            ? state.plan.idlePerBusySecond()
            : 0.0;
        if (idle_ratio > 0.0) {
            machine.idleFor(idle_ratio * busy);
            state.result.pause_s += idle_ratio * busy;
        }
        if (gate_pause_per_busy > 0.0) {
            machine.idleFor(gate_pause_per_busy * busy);
            state.result.pause_s += gate_pause_per_busy * busy;
        }

        // Account the calibrated QoS loss of the installed setting,
        // weighted by the work (one unit) it produced.
        state.qos_weighted += state.combo_qos;
        state.qos_work += 1.0;
        ++state.result.beat_count;
        ++state.unit;

        if (!observers_.empty()) {
            BeatTrace bt;
            bt.time_s = machine.now();
            bt.window_rate = state.monitor->windowRate();
            bt.normalized_perf = state.target > 0.0
                ? bt.window_rate / state.target
                : 0.0;
            bt.commanded_speedup = state.commanded;
            bt.knob_gain = state.combo_speedup;
            bt.combination = state.applied;
            bt.pstate = machine.pstate();
            const BeatEvent event{u, bt};
            for (RunObserver *observer : observers_)
                observer->onBeat(event);
        }
    }

    if (state.unit < state.units)
        return std::nullopt; // Paused at the deadline.

    ControlledRun result = state.result;
    result.seconds = machine.now() - state.start_time_s;
    result.output = app_->output();
    result.mean_qos_loss_estimate = state.qos_work > 0.0
        ? state.qos_weighted / state.qos_work
        : 0.0;
    state_.reset();

    for (RunObserver *observer : observers_)
        observer->onRunEnd(result);
    return result;
}

} // namespace powerdial::core
