#include "core/session.h"

#include <stdexcept>

#include "heartbeats/heartbeat.h"

namespace powerdial::core {

SessionOptions &
SessionOptions::withQuantum(std::size_t beats)
{
    quantum_beats = beats;
    return *this;
}

SessionOptions &
SessionOptions::withWindow(std::size_t beats)
{
    window = beats;
    return *this;
}

SessionOptions &
SessionOptions::withTargetRate(double rate)
{
    target_rate = rate;
    return *this;
}

SessionOptions &
SessionOptions::withKnobsEnabled(bool enabled)
{
    knobs_enabled = enabled;
    return *this;
}

SessionOptions &
SessionOptions::withPolicy(PolicyFactory factory)
{
    policy = std::move(factory);
    return *this;
}

SessionOptions &
SessionOptions::withStrategy(StrategyFactory factory)
{
    strategy = std::move(factory);
    return *this;
}

SessionOptions &
SessionOptions::withGovernor(sim::DvfsGovernor gov)
{
    governor = std::move(gov);
    return *this;
}

SessionOptions &
SessionOptions::withGate(BeatGate g)
{
    gate = std::move(g);
    return *this;
}

Session::Session(App &app, const KnobTable &table,
                 const ResponseModel &model, SessionOptions options)
    : app_(&app), table_(&table), model_(&model),
      options_(std::move(options))
{
    if (options_.quantum_beats == 0)
        throw std::invalid_argument("Session: quantum must be >= 1");
    if (options_.window == 0)
        throw std::invalid_argument("Session: window must be >= 1");
    policy_ = options_.policy ? options_.policy()
                              : std::make_unique<DeadbeatPolicy>();
    if (policy_ == nullptr)
        throw std::invalid_argument("Session: policy factory returned null");
    strategy_ = options_.strategy
        ? options_.strategy()
        : std::make_unique<MinimalSpeedupStrategy>();
    if (strategy_ == nullptr)
        throw std::invalid_argument(
            "Session: strategy factory returned null");
}

void
Session::observe(RunObserver &observer)
{
    observers_.push_back(&observer);
}

RunObserver &
Session::observe(std::unique_ptr<RunObserver> observer)
{
    if (observer == nullptr)
        throw std::invalid_argument("Session: null observer");
    RunObserver &ref = *observer;
    owned_observers_.push_back(std::move(observer));
    observers_.push_back(&ref);
    return ref;
}

ControlledRun
Session::run(std::size_t input, sim::Machine &machine)
{
    const double target = options_.target_rate > 0.0
        ? options_.target_rate
        : model_->baselineRate();

    // Paper setup: min and max target are both the baseline rate.
    hb::Monitor monitor(options_.window, {target, target});

    ControlSetup setup;
    setup.baseline_rate = model_->baselineRate();
    setup.target_rate = target;
    setup.min_speedup = model_->baselinePoint().speedup;
    setup.max_speedup = model_->maxSpeedup();
    policy_->begin(setup);
    strategy_->begin(*model_, options_.quantum_beats);

    // Rewind the owned governor with its schedule re-anchored at this
    // run's start time, so a powerCap built against t = 0 replays
    // correctly even when the machine carries time over from a
    // previous run.
    sim::DvfsGovernor *governor = nullptr;
    if (options_.governor.has_value()) {
        governor = &*options_.governor;
        governor->reset(machine.now());
    }

    // Start at the baseline (highest QoS) setting, like the paper.
    const std::size_t baseline = model_->baselineCombination();
    app_->configure(app_->knobSpace().valuesOf(baseline));
    app_->loadInput(input);

    ActuationPlan plan;
    plan.slices.push_back({baseline, 1.0, model_->baselinePoint().speedup,
                           model_->baselinePoint().qos_loss});

    ControlledRun result;
    const double start = machine.now();
    const std::size_t units = app_->unitCount();

    if (!observers_.empty()) {
        RunStartEvent event;
        event.app_name = app_->name();
        event.input = input;
        event.units = units;
        event.target_rate = target;
        event.start_time_s = start;
        for (RunObserver *observer : observers_)
            observer->onRunStart(event);
    }

    std::size_t applied = baseline;
    double commanded = setup.min_speedup;
    double qos_weighted = 0.0;
    double qos_work = 0.0;

    // Calibrated point of the installed combination, refreshed only
    // when the combination changes (it is constant within a quantum).
    double combo_qos = 0.0;
    double combo_speedup = 1.0;
    const auto lookupCombo = [this, &combo_qos,
                              &combo_speedup](std::size_t combo) {
        combo_qos = 0.0;
        combo_speedup = 1.0;
        for (const auto &p : model_->allPoints()) {
            if (p.combination == combo) {
                combo_qos = p.qos_loss;
                combo_speedup = p.speedup;
                break;
            }
        }
    };
    lookupCombo(applied);

    for (std::size_t u = 0; u < units; ++u) {
        // Main control loop: heartbeat at the top of the loop.
        monitor.beat(machine.now());
        if (governor != nullptr)
            governor->poll(machine);

        // External arbitration gate: an outside agent (e.g. the fleet
        // power arbiter) may pause this tenant or re-actuate the
        // machine before the unit's work runs.
        double gate_pause_per_busy = 0.0;
        if (options_.gate) {
            BeatGateContext gate_ctx{u, machine};
            options_.gate(gate_ctx);
            if (gate_ctx.pause_seconds > 0.0)
                machine.idleFor(gate_ctx.pause_seconds);
            gate_pause_per_busy = gate_ctx.pause_per_busy;
        }

        // Quantum boundary: run the policy and re-plan.
        if (options_.knobs_enabled && u > 0 &&
            u % options_.quantum_beats == 0) {
            const double rate = monitor.windowRate();
            if (rate > 0.0) {
                commanded = policy_->update(rate);
                plan = strategy_->plan(commanded);
                if (!observers_.empty()) {
                    const QuantumEvent event{u, rate, commanded, plan};
                    for (RunObserver *observer : observers_)
                        observer->onQuantum(event);
                }
            }
        }

        const std::size_t combo = options_.knobs_enabled
            ? plan.combinationAtBeat(u % options_.quantum_beats,
                                     options_.quantum_beats)
            : baseline;
        if (combo != applied) {
            table_->apply(combo);
            applied = combo;
            lookupCombo(applied);
        }

        const double before = machine.now();
        app_->processUnit(u, machine);
        const double busy = machine.now() - before;

        // Race-to-idle: insert the plan's idle slack after the work,
        // then any externally imposed duty-cycle slack from the gate.
        const double idle_ratio = options_.knobs_enabled
            ? plan.idlePerBusySecond()
            : 0.0;
        if (idle_ratio > 0.0)
            machine.idleFor(idle_ratio * busy);
        if (gate_pause_per_busy > 0.0)
            machine.idleFor(gate_pause_per_busy * busy);

        // Account the calibrated QoS loss of the installed setting,
        // weighted by the work (one unit) it produced.
        qos_weighted += combo_qos;
        qos_work += 1.0;
        ++result.beat_count;

        if (!observers_.empty()) {
            BeatTrace bt;
            bt.time_s = machine.now();
            bt.window_rate = monitor.windowRate();
            bt.normalized_perf =
                target > 0.0 ? bt.window_rate / target : 0.0;
            bt.commanded_speedup = commanded;
            bt.knob_gain = combo_speedup;
            bt.combination = applied;
            bt.pstate = machine.pstate();
            const BeatEvent event{u, bt};
            for (RunObserver *observer : observers_)
                observer->onBeat(event);
        }
    }

    result.seconds = machine.now() - start;
    result.output = app_->output();
    result.mean_qos_loss_estimate =
        qos_work > 0.0 ? qos_weighted / qos_work : 0.0;

    for (RunObserver *observer : observers_)
        observer->onRunEnd(result);
    return result;
}

KnobTable
rebindKnobTable(const KnobTable &source, App &app)
{
    KnobTable table;
    app.bindControlVariables(table);
    if (table.variableCount() != source.variableCount())
        throw std::invalid_argument(
            "rebindKnobTable: binding count mismatch");
    const std::size_t combinations = app.knobSpace().combinations();
    for (std::size_t c = 0; c < combinations; ++c)
        for (std::size_t v = 0; v < source.variableCount(); ++v)
            table.record(c, v, source.value(c, v));
    return table;
}

} // namespace powerdial::core
