#include "core/actuation_strategy.h"

#include <algorithm>
#include <stdexcept>

namespace powerdial::core {

double
ActuationPlan::averageSpeedup() const
{
    double avg = 0.0;
    for (const auto &s : slices)
        avg += s.speedup * s.fraction;
    return avg;
}

double
ActuationPlan::averageQosLoss() const
{
    // QoS loss accrues per unit of *output*: a slice at speedup s
    // produces s * fraction units of work, so weight by work share.
    double work = 0.0;
    double weighted = 0.0;
    for (const auto &s : slices) {
        work += s.fraction * s.speedup;
        weighted += s.fraction * s.speedup * s.qos_loss;
    }
    return work > 0.0 ? weighted / work : 0.0;
}

std::size_t
ActuationPlan::combinationAtBeat(std::size_t beat,
                                 std::size_t quantum_beats) const
{
    if (slices.empty())
        throw std::logic_error("ActuationPlan: empty plan");
    if (quantum_beats == 0)
        throw std::invalid_argument("ActuationPlan: quantum must be >= 1");
    const double pos = (static_cast<double>(beat % quantum_beats) + 0.5) /
                       static_cast<double>(quantum_beats);
    // Beats are laid out over the busy portion of the quantum.
    const double busy = 1.0 - idle_fraction;
    double acc = 0.0;
    for (const auto &s : slices) {
        acc += s.fraction / (busy > 0.0 ? busy : 1.0);
        if (pos * 1.0 <= acc * 1.0 + 1e-12)
            return s.combination;
    }
    return slices.back().combination;
}

double
ActuationPlan::idlePerBusySecond() const
{
    const double busy = 1.0 - idle_fraction;
    if (busy <= 0.0)
        return 0.0;
    return idle_fraction / busy;
}

namespace {

/**
 * The minimal-speedup solution (t_max = 0) of Equations 9-11, shared
 * by MinimalSpeedupStrategy and QosBudgetStrategy. Arithmetic is
 * identical to the pre-Session Actuator::plan (equivalence-tested).
 */
ActuationPlan
minimalSpeedupPlan(const ResponseModel &model, double speedup)
{
    ActuationPlan out;
    const auto &base = model.baselinePoint();
    const double s_cmd = std::max(speedup, base.speedup);

    // Find the slowest Pareto point with speedup >= command (s_min of
    // the paper), mix with the default setting so the quantum average
    // equals the command.
    const auto &hi = model.atLeast(s_cmd);
    if (hi.speedup <= s_cmd || hi.combination == base.combination) {
        // Command at or above s_max (run flat out), or command within
        // rounding of the baseline.
        out.slices.push_back(
            {hi.combination, 1.0, hi.speedup, hi.qos_loss});
        return out;
    }
    if (s_cmd <= base.speedup) {
        out.slices.push_back(
            {base.combination, 1.0, base.speedup, base.qos_loss});
        return out;
    }
    const double t_min =
        (s_cmd - base.speedup) / (hi.speedup - base.speedup);
    const double t_default = 1.0 - t_min;
    if (t_min > 0.0)
        out.slices.push_back(
            {hi.combination, t_min, hi.speedup, hi.qos_loss});
    if (t_default > 0.0)
        out.slices.push_back(
            {base.combination, t_default, base.speedup, base.qos_loss});
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// MinimalSpeedupStrategy
// ---------------------------------------------------------------------------

std::string
MinimalSpeedupStrategy::name() const
{
    return "minimal-speedup";
}

void
MinimalSpeedupStrategy::begin(const ResponseModel &model,
                              std::size_t quantum_beats)
{
    if (quantum_beats == 0)
        throw std::invalid_argument(
            "MinimalSpeedupStrategy: quantum must be >= 1 beat");
    model_ = &model;
}

ActuationPlan
MinimalSpeedupStrategy::plan(double speedup)
{
    if (model_ == nullptr)
        throw std::logic_error("MinimalSpeedupStrategy: plan before begin");
    return minimalSpeedupPlan(*model_, speedup);
}

// ---------------------------------------------------------------------------
// RaceToIdleStrategy
// ---------------------------------------------------------------------------

std::string
RaceToIdleStrategy::name() const
{
    return "race-to-idle";
}

void
RaceToIdleStrategy::begin(const ResponseModel &model,
                          std::size_t quantum_beats)
{
    if (quantum_beats == 0)
        throw std::invalid_argument(
            "RaceToIdleStrategy: quantum must be >= 1 beat");
    model_ = &model;
}

ActuationPlan
RaceToIdleStrategy::plan(double speedup)
{
    if (model_ == nullptr)
        throw std::logic_error("RaceToIdleStrategy: plan before begin");
    ActuationPlan out;
    const auto &base = model_->baselinePoint();
    const double s_cmd = std::max(speedup, base.speedup);

    // t_min = t_default = 0: sprint at s_max, idle the rest.
    const auto &fast = model_->fastest();
    const double frac = std::min(1.0, s_cmd / fast.speedup);
    out.slices.push_back(
        {fast.combination, frac, fast.speedup, fast.qos_loss});
    out.idle_fraction = 1.0 - frac;
    return out;
}

// ---------------------------------------------------------------------------
// QosBudgetStrategy
// ---------------------------------------------------------------------------

QosBudgetStrategy::QosBudgetStrategy(double mean_qos_budget)
    : budget_(mean_qos_budget)
{
    if (budget_ < 0.0)
        throw std::invalid_argument(
            "QosBudgetStrategy: budget must be >= 0");
}

std::string
QosBudgetStrategy::name() const
{
    return "qos-budget";
}

void
QosBudgetStrategy::begin(const ResponseModel &model,
                         std::size_t quantum_beats)
{
    if (quantum_beats == 0)
        throw std::invalid_argument(
            "QosBudgetStrategy: quantum must be >= 1 beat");
    model_ = &model;
    spent_ = 0.0;
    quanta_ = 0;
}

double
QosBudgetStrategy::meanSpent() const
{
    return quanta_ > 0 ? spent_ / static_cast<double>(quanta_) : 0.0;
}

ActuationPlan
QosBudgetStrategy::plan(double speedup)
{
    if (model_ == nullptr)
        throw std::logic_error("QosBudgetStrategy: plan before begin");
    // Allowance banks at budget rate: after this quantum the running
    // mean must still satisfy (spent + loss) / (quanta + 1) <= budget.
    const double allowed = std::max(
        0.0,
        budget_ * static_cast<double>(quanta_ + 1) - spent_);

    ActuationPlan out = minimalSpeedupPlan(*model_, speedup);
    if (out.averageQosLoss() > allowed) {
        // Overspend: fall back to the fastest affordable mix of the
        // default setting (loss 0 by construction) with one frontier
        // point. For a mix running the frontier point for time
        // fraction t, work-weighted loss is
        //     t s_hi q_hi / (t s_hi + (1-t) s_b) <= allowed
        //  =>  t <= allowed s_b / (s_hi (q_hi - allowed) + allowed s_b)
        // and delivered speedup is t s_hi + (1-t) s_b. Pick the
        // frontier point maximising delivered speedup (capped at the
        // command).
        const auto &base = model_->baselinePoint();
        const double s_cmd = std::max(speedup, base.speedup);
        ActuationPlan best;
        best.slices.push_back(
            {base.combination, 1.0, base.speedup, base.qos_loss});
        double best_speedup = base.speedup;
        for (const auto &p : model_->pareto()) {
            if (p.combination == base.combination)
                continue;
            double t;
            if (p.qos_loss <= allowed) {
                t = 1.0; // The whole quantum is affordable.
            } else {
                const double denom =
                    p.speedup * (p.qos_loss - allowed) +
                    allowed * base.speedup;
                t = denom > 0.0
                    ? allowed * base.speedup / denom
                    : 0.0;
            }
            // Never deliver more than commanded.
            const double t_cmd =
                p.speedup > base.speedup
                    ? (s_cmd - base.speedup) /
                          (p.speedup - base.speedup)
                    : 0.0;
            t = std::clamp(std::min(t, t_cmd), 0.0, 1.0);
            const double delivered =
                t * p.speedup + (1.0 - t) * base.speedup;
            if (delivered > best_speedup + 1e-12) {
                best_speedup = delivered;
                best.slices.clear();
                if (t > 0.0)
                    best.slices.push_back(
                        {p.combination, t, p.speedup, p.qos_loss});
                if (t < 1.0)
                    best.slices.push_back({base.combination, 1.0 - t,
                                           base.speedup,
                                           base.qos_loss});
            }
        }
        out = best;
    }
    spent_ += out.averageQosLoss();
    ++quanta_;
    return out;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

StrategyFactory
makeMinimalSpeedupStrategy()
{
    return [] { return std::make_unique<MinimalSpeedupStrategy>(); };
}

StrategyFactory
makeRaceToIdleStrategy()
{
    return [] { return std::make_unique<RaceToIdleStrategy>(); };
}

StrategyFactory
makeQosBudgetStrategy(double mean_qos_budget)
{
    return [mean_qos_budget] {
        return std::make_unique<QosBudgetStrategy>(mean_qos_budget);
    };
}

} // namespace powerdial::core
