#include "core/knob.h"

#include <cmath>
#include <stdexcept>

namespace powerdial::core {

KnobSpace::KnobSpace(std::vector<KnobParameter> params)
    : params_(std::move(params))
{
    if (params_.empty())
        throw std::invalid_argument("KnobSpace: no parameters");
    combinations_ = 1;
    for (const auto &p : params_) {
        if (p.values.empty())
            throw std::invalid_argument("KnobSpace: parameter '" + p.name +
                                        "' has no values");
        combinations_ *= p.values.size();
    }
}

const KnobParameter &
KnobSpace::parameter(std::size_t i) const
{
    if (i >= params_.size())
        throw std::out_of_range("KnobSpace: bad parameter index");
    return params_[i];
}

std::vector<std::size_t>
KnobSpace::indicesOf(std::size_t combination) const
{
    if (combination >= combinations_)
        throw std::out_of_range("KnobSpace: bad combination");
    std::vector<std::size_t> idx(params_.size());
    for (std::size_t i = params_.size(); i-- > 0;) {
        const std::size_t n = params_[i].values.size();
        idx[i] = combination % n;
        combination /= n;
    }
    return idx;
}

std::vector<double>
KnobSpace::valuesOf(std::size_t combination) const
{
    const auto idx = indicesOf(combination);
    std::vector<double> values(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i)
        values[i] = params_[i].values[idx[i]];
    return values;
}

std::size_t
KnobSpace::combinationOf(const std::vector<std::size_t> &indices) const
{
    if (indices.size() != params_.size())
        throw std::invalid_argument("KnobSpace: index arity mismatch");
    std::size_t combo = 0;
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const std::size_t n = params_[i].values.size();
        if (indices[i] >= n)
            throw std::out_of_range("KnobSpace: bad value index");
        combo = combo * n + indices[i];
    }
    return combo;
}

std::size_t
KnobSpace::findCombination(const std::vector<double> &values) const
{
    if (values.size() != params_.size())
        throw std::invalid_argument("KnobSpace: value arity mismatch");
    std::vector<std::size_t> idx(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        bool found = false;
        for (std::size_t j = 0; j < params_[i].values.size(); ++j) {
            if (params_[i].values[j] == values[i]) {
                idx[i] = j;
                found = true;
                break;
            }
        }
        if (!found) {
            throw std::invalid_argument(
                "KnobSpace: value not admissible for parameter '" +
                params_[i].name + "'");
        }
    }
    return combinationOf(idx);
}

void
KnobTable::bind(ControlVariableBinding binding)
{
    if (!binding.setter)
        throw std::invalid_argument("KnobTable: null setter");
    bindings_.push_back(std::move(binding));
}

void
KnobTable::record(std::size_t combination, std::size_t var_index,
                  std::vector<double> value)
{
    if (var_index >= bindings_.size())
        throw std::out_of_range("KnobTable: bad variable index");
    if (values_.size() <= combination)
        values_.resize(combination + 1);
    auto &row = values_[combination];
    if (row.size() < bindings_.size())
        row.resize(bindings_.size());
    row[var_index] = std::move(value);
}

void
KnobTable::apply(std::size_t combination) const
{
    if (combination >= values_.size())
        throw std::out_of_range("KnobTable: no values for combination");
    const auto &row = values_[combination];
    for (std::size_t i = 0; i < bindings_.size(); ++i) {
        if (i >= row.size() || row[i].empty()) {
            throw std::logic_error("KnobTable: missing value for '" +
                                   bindings_[i].name + "'");
        }
        bindings_[i].setter(row[i]);
    }
}

const ControlVariableBinding &
KnobTable::binding(std::size_t i) const
{
    if (i >= bindings_.size())
        throw std::out_of_range("KnobTable: bad binding index");
    return bindings_[i];
}

const std::vector<double> &
KnobTable::value(std::size_t combination, std::size_t var_index) const
{
    if (combination >= values_.size() ||
        var_index >= values_[combination].size() ||
        values_[combination][var_index].empty()) {
        throw std::out_of_range("KnobTable: value not recorded");
    }
    return values_[combination][var_index];
}

} // namespace powerdial::core
