/**
 * @file
 * Dynamic knobs: configuration parameters and their combination space.
 *
 * A knob parameter is one static configuration parameter with a finite
 * range of settings (paper "Parameter Identification", section 2). The
 * KnobSpace is the cartesian product of all parameters: each point
 * ("combination") corresponds to one way of configuring the application
 * and therefore one point in the performance/QoS trade-off space.
 */
#ifndef POWERDIAL_CORE_KNOB_H
#define POWERDIAL_CORE_KNOB_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace powerdial::core {

/** One configuration parameter and its admissible settings. */
struct KnobParameter
{
    std::string name;           //!< e.g. "subme", "-sm", "argv[4]".
    std::vector<double> values; //!< Admissible settings, any order.
};

/**
 * The cartesian product of a set of knob parameters.
 *
 * Combinations are indexed 0 .. combinations()-1 in row-major order
 * (the last parameter varies fastest).
 */
class KnobSpace
{
  public:
    explicit KnobSpace(std::vector<KnobParameter> params);

    /** Number of parameters. */
    std::size_t parameterCount() const { return params_.size(); }

    /** Parameter @p i. */
    const KnobParameter &parameter(std::size_t i) const;

    /** Total number of combinations (product of value counts). */
    std::size_t combinations() const { return combinations_; }

    /** Per-parameter value indices of @p combination. */
    std::vector<std::size_t> indicesOf(std::size_t combination) const;

    /** Per-parameter values of @p combination. */
    std::vector<double> valuesOf(std::size_t combination) const;

    /** Combination index from per-parameter value indices. */
    std::size_t combinationOf(const std::vector<std::size_t> &indices) const;

    /**
     * The combination whose per-parameter values equal @p values
     * (exact match). Throws if absent.
     */
    std::size_t findCombination(const std::vector<double> &values) const;

  private:
    std::vector<KnobParameter> params_;
    std::size_t combinations_;
};

/**
 * A write binding to one control variable in the application's address
 * space. The PowerDial runtime calls the setter with the recorded value
 * vector (scalars are 1-element) to move the application to a different
 * knob setting, exactly as the paper's callbacks do (section 2.1).
 */
struct ControlVariableBinding
{
    std::string name;
    std::function<void(const std::vector<double> &)> setter;
};

/**
 * The per-combination control-variable values recorded during dynamic
 * knob identification, plus the bindings to install them.
 */
class KnobTable
{
  public:
    KnobTable() = default;

    /** Register a control variable binding. Order defines value order. */
    void bind(ControlVariableBinding binding);

    /**
     * Record the value of control variable @p var_index at
     * @p combination. Values may be recorded in any order.
     */
    void record(std::size_t combination, std::size_t var_index,
                std::vector<double> value);

    /** Install all recorded values for @p combination via the setters. */
    void apply(std::size_t combination) const;

    std::size_t variableCount() const { return bindings_.size(); }
    const ControlVariableBinding &binding(std::size_t i) const;

    /** Recorded value (throws if missing). */
    const std::vector<double> &value(std::size_t combination,
                                     std::size_t var_index) const;

  private:
    std::vector<ControlVariableBinding> bindings_;
    /** values_[combination][var] — resized on demand. */
    std::vector<std::vector<std::vector<double>>> values_;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_KNOB_H
