/**
 * @file
 * The observation seam of the control system.
 *
 * A RunObserver receives callbacks from the Session runtime as a
 * controlled run progresses: run start, each quantum re-plan, each
 * heartbeat, and run end. The pre-Session runtime baked a BeatTrace
 * vector into every run; that collection is now one observer
 * (BeatTraceRecorder) among many, and a run with no observers pays no
 * per-beat recording cost at all. A streaming CSV exporter
 * (core::CsvTraceObserver in trace_export.h) is another.
 *
 * Delivery contract: observers are notified in registration order for
 * every event. An exception thrown by an observer aborts the run and
 * propagates to the Session::run caller; observers registered before
 * the throwing one have already received the event, later ones have
 * not (the equivalence and ordering tests pin this down).
 */
#ifndef POWERDIAL_CORE_RUN_OBSERVER_H
#define POWERDIAL_CORE_RUN_OBSERVER_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/actuation_strategy.h"
#include "qos/distortion.h"

namespace powerdial::core {

/** Per-beat record, the raw series behind Figure 7. */
struct BeatTrace
{
    double time_s;          //!< Virtual time of the beat.
    double window_rate;     //!< Sliding-window heart rate.
    double normalized_perf; //!< window_rate / target (1.0 = on target).
    double commanded_speedup; //!< Controller output for this quantum.
    double knob_gain;       //!< Calibrated speedup of the installed combo.
    std::size_t combination;//!< Installed knob combination.
    std::size_t pstate;     //!< Machine P-state at the beat.
};

/** Result of one controlled execution. */
struct ControlledRun
{
    qos::OutputAbstraction output;
    double seconds = 0.0;    //!< Total virtual execution time.
    double mean_qos_loss_estimate = 0.0; //!< Work-weighted calibrated
                                         //!< QoS loss of installed combos.
    std::size_t beat_count = 0; //!< Heartbeats (units) processed.

    // Where `seconds` went, additively (up to FP rounding):
    // seconds ~= service_s + queue_share_s + class_deficit_s + pause_s.
    double service_s = 0.0;  //!< Work at nominal frequency, full share.
    double queue_share_s = 0.0;  //!< Waiting on co-tenants (share < 1).
    double class_deficit_s = 0.0; //!< Running below nominal speed
                                  //!< (DVFS throttle, slow class).
    double pause_s = 0.0;    //!< Explicit idling: race-to-idle slack,
                             //!< duty-cycle gates, arbiter pauses.
};

/** Context delivered at run start. */
struct RunStartEvent
{
    std::string app_name;    //!< Application under control.
    std::size_t input;       //!< Input index being processed.
    std::size_t units;       //!< Units (heartbeats) the run will emit.
    double target_rate;      //!< Resolved target heart rate, beats/s.
    double start_time_s;     //!< Virtual time at run start.
};

/** Context delivered at each quantum re-plan. */
struct QuantumEvent
{
    std::size_t beat;          //!< Beat index of the quantum boundary.
    double window_rate;        //!< Observed sliding-window rate.
    double commanded_speedup;  //!< Fresh policy command.
    const ActuationPlan &plan; //!< Plan installed for the quantum.
    double time_s = 0.0;       //!< Virtual time of the re-plan.
};

/** Context delivered at each heartbeat. */
struct BeatEvent
{
    std::size_t beat;        //!< 0-based beat index within the run.
    const BeatTrace &trace;  //!< The beat's full trace record.
};

/** Beat/quantum callback interface for controlled runs. */
class RunObserver
{
  public:
    virtual ~RunObserver() = default;

    virtual void onRunStart(const RunStartEvent &event) { (void)event; }
    virtual void onQuantum(const QuantumEvent &event) { (void)event; }
    virtual void onBeat(const BeatEvent &event) { (void)event; }
    virtual void onRunEnd(const ControlledRun &run) { (void)run; }
};

/**
 * The pre-Session beat-trace collection as an observer: records every
 * BeatTrace into a vector. Reusable across runs — the vector resets at
 * each onRunStart.
 */
class BeatTraceRecorder final : public RunObserver
{
  public:
    void onRunStart(const RunStartEvent &event) override;
    void onBeat(const BeatEvent &event) override;

    /** The recorded series of the most recent (or in-flight) run. */
    const std::vector<BeatTrace> &beats() const { return beats_; }

  private:
    std::vector<BeatTrace> beats_;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_RUN_OBSERVER_H
