/**
 * @file
 * Pareto-frontier computation over the speedup/QoS-loss plane.
 *
 * Calibration (paper section 2.2) keeps only the Pareto-optimal knob
 * settings: a setting is dominated if some other setting is at least as
 * fast and loses no more QoS. Figures 5 and 6 show that the suboptimal
 * settings are plentiful, which is why the training exploration matters.
 */
#ifndef POWERDIAL_CORE_PARETO_H
#define POWERDIAL_CORE_PARETO_H

#include <cstddef>
#include <vector>

namespace powerdial::core {

/** One knob combination's calibrated operating point. */
struct OperatingPoint
{
    std::size_t combination; //!< Index into the KnobSpace.
    double speedup;          //!< Mean speedup vs the baseline setting.
    double qos_loss;         //!< Mean QoS loss (Eq. 1); 0 is best.
};

/**
 * The Pareto-optimal subset of @p points, sorted by ascending speedup.
 *
 * A point is kept iff no other point has (speedup >= its speedup) and
 * (qos_loss <= its qos_loss) with at least one strict inequality.
 * Duplicate operating points collapse to one.
 */
std::vector<OperatingPoint>
paretoFrontier(const std::vector<OperatingPoint> &points);

/** True if @p a dominates @p b (faster-or-equal and no worse QoS). */
bool dominates(const OperatingPoint &a, const OperatingPoint &b);

} // namespace powerdial::core

#endif // POWERDIAL_CORE_PARETO_H
