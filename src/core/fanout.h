/**
 * @file
 * The deterministic clone fan-out engine.
 *
 * Every parallel section in this repository follows one convention so
 * that pooled output is bit-identical to serial output at any thread
 * count:
 *
 *   1. clones are created *serially* (App::clone() of a shared
 *      instance is not required to be thread-safe), each with a
 *      rebindKnobTable()-copied knob table when a session will run
 *      on it;
 *   2. dispatch is `threads == 1 ? serial loop :
 *      ThreadPool(min(threads, tasks))`, with threads == 0 meaning
 *      all hardware contexts;
 *   3. results land in pre-sized slots indexed by task and are merged
 *      in fixed task order, never in completion order;
 *   4. a task that throws drains the in-flight tasks and rethrows the
 *      first exception (core::ThreadPool's semantics), so the engine
 *      never hangs and the caller sees the same exception serially
 *      and pooled.
 *
 * The FanoutEngine holds that convention in one place. Calibration,
 * consolidation replays, the fleet server's tenant slices, and the
 * figure-6/7 benches all fan out through it instead of hand-rolling
 * the preamble.
 */
#ifndef POWERDIAL_CORE_FANOUT_H
#define POWERDIAL_CORE_FANOUT_H

#include <cstddef>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/app.h"
#include "core/knob.h"
#include "core/thread_pool.h"

namespace powerdial::core {

/**
 * Rebind a knob table onto another instance of the same application
 * (typically an App::clone()): copies every recorded control-variable
 * value and lets @p app install its own write bindings. The building
 * block for running sessions on cloned applications in parallel.
 */
KnobTable rebindKnobTable(const KnobTable &source, App &app);

/**
 * One fan-out domain: resolves a thread-count option once, owns the
 * pool (if any) for its whole lifetime, and dispatches any number of
 * indexed jobs over it. Reusing one engine across jobs (calibration's
 * baseline pass then sweep; the fleet server's per-epoch slices)
 * amortises worker start-up without changing output: results never
 * depend on which worker ran which task.
 */
class FanoutEngine
{
  public:
    /**
     * @param threads   1 = serial (no pool, the default convention),
     *                  0 = all hardware contexts, N > 1 = exactly N
     *                  workers.
     * @param max_tasks Largest job this engine will dispatch; a
     *                  nonzero value caps the worker count (no point
     *                  in more workers — each typically owning a full
     *                  application clone — than tasks to claim).
     *                  0 = unknown, don't cap.
     */
    explicit FanoutEngine(std::size_t threads, std::size_t max_tasks = 0);

    /** True when dispatch runs on the caller's thread (no pool). */
    bool serial() const { return !pool_.has_value(); }

    /** Worker count: 1 when serial, the pool size otherwise. */
    std::size_t workers() const
    {
        return pool_.has_value() ? pool_->size() : 1;
    }

    /**
     * Run fn(task, worker) for every task in [0, tasks). Serial (or
     * single-task) jobs run ascending on the caller's thread with
     * worker == 0; pooled jobs distribute over the workers in claim
     * order. Either way the caller merges results by task index, so
     * output is identical.
     */
    void run(std::size_t tasks, const ThreadPool::Task &fn);

    /**
     * Fan-out-and-merge convenience: returns {fn(0), ..., fn(tasks-1)}
     * with each result in its task's pre-sized slot — the fixed-order
     * merge of the convention, independent of execution order. The
     * result type must not be bool (std::vector<bool> packs bits, so
     * concurrent per-task slot writes would race); wrap flags in a
     * struct or use run() with a caller-owned array instead.
     */
    template <typename Fn>
    auto
    map(std::size_t tasks, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{}, std::size_t{}))>
    {
        using Result = decltype(fn(std::size_t{}, std::size_t{}));
        static_assert(!std::is_same_v<Result, bool>,
                      "FanoutEngine::map: bool results would land in "
                      "a bit-packed std::vector<bool>, racing under "
                      "the pooled path");
        std::vector<Result> results(tasks);
        run(tasks, [&](std::size_t task, std::size_t worker) {
            results[task] = fn(task, worker);
        });
        return results;
    }

    /**
     * Serially create @p count private clones of @p app — one per
     * task, or one per worker (pass workers()) when tasks share
     * per-worker state.
     */
    static std::vector<std::unique_ptr<App>> cloneApps(const App &app,
                                                       std::size_t count);

    /** One private clone per pool worker (a single clone when serial). */
    std::vector<std::unique_ptr<App>>
    workerClones(const App &app) const
    {
        return cloneApps(app, workers());
    }

    /** Clones paired with rebound knob tables, indexed together. */
    struct BoundClones
    {
        std::vector<std::unique_ptr<App>> apps;
        std::vector<KnobTable> tables;

        std::size_t size() const { return apps.size(); }
    };

    /**
     * Serially create @p count private clones of @p app, each bound to
     * its own rebindKnobTable() copy of @p table — the full session
     * fan-out preamble.
     */
    static BoundClones cloneBound(const App &app, const KnobTable &table,
                                  std::size_t count);

  private:
    std::optional<ThreadPool> pool_;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_FANOUT_H
