#include "core/consolidation.h"

#include "core/fanout.h"
#include "qos/distortion.h"

namespace powerdial::core {

namespace {

/** One replay on a private clone; pure function of its inputs. */
ReplayOutcome
replayOne(App &app, const KnobTable &table, const ResponseModel &model,
          const qos::OutputAbstraction &baseline, const ReplayCase &c,
          const ConsolidationReplayOptions &options)
{
    sim::Machine machine(options.machine);
    machine.setShare(std::min(1.0, c.share));
    machine.setUtilization(c.utilization);

    Session session(app, table, model, options.session);
    BeatTraceRecorder recorder;
    session.observe(recorder);
    const ControlledRun run = session.run(options.input, machine);

    ReplayOutcome out;
    const auto &beats = recorder.beats();
    const std::size_t tail = beats.size() / 2;
    double perf = 0.0;
    for (std::size_t i = tail; i < beats.size(); ++i)
        perf += beats[i].normalized_perf;
    out.tail_mean_perf = beats.size() > tail
        ? perf / static_cast<double>(beats.size() - tail)
        : 0.0;
    out.qos_loss_measured = qos::distortion(baseline, run.output);
    out.qos_loss_estimate = run.mean_qos_loss_estimate;
    out.seconds = run.seconds;
    out.energy_j = machine.energyJoules();
    out.mean_watts = machine.meanWatts();
    return out;
}

} // namespace

std::vector<ReplayOutcome>
replayConsolidation(const App &app, const KnobTable &table,
                    const ResponseModel &model,
                    const qos::OutputAbstraction &baseline,
                    const std::vector<ReplayCase> &cases,
                    const ConsolidationReplayOptions &options)
{
    if (cases.empty())
        return {};

    // Every case runs on a private clone with a rebound knob table —
    // identical work on the serial and pooled paths, so outcomes are
    // bit-identical at any thread count. The engine creates the
    // clones serially and merges outcomes in case order.
    FanoutEngine engine(options.threads, cases.size());
    auto bound = FanoutEngine::cloneBound(app, table, cases.size());
    return engine.map(
        cases.size(), [&](std::size_t task, std::size_t /*worker*/) {
            return replayOne(*bound.apps[task], bound.tables[task],
                             model, baseline, cases[task], options);
        });
}

} // namespace powerdial::core
