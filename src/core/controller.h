/**
 * @file
 * The PowerDial heart-rate controller (paper section 2.3.2).
 *
 * Implements the integral control law of Equations 3-4:
 *
 *     e(t) = g - h(t)
 *     s(t) = s(t-1) + e(t) / b
 *
 * where g is the target heart rate, h(t) the observed heart rate, b the
 * baseline speed (heart rate with all knobs at their defaults on an
 * unloaded machine), and s(t) the speedup to apply next.
 *
 * With the application model h(t+1) = b * s(t) (Equation 2) the closed
 * loop has transfer function F(z) = 1/z (Equation 8): unit steady-state
 * gain (it converges to g), a single pole at z = 0 (stable, no
 * oscillation, deadbeat convergence). A gain parameter generalises the
 * law to s(t) = s(t-1) + k * e(t)/b, moving the pole to z = 1 - k; the
 * test suite and the ablation bench verify the textbook behaviour
 * (k = 1 deadbeat; 0 < k < 1 slower; k > 2 unstable).
 */
#ifndef POWERDIAL_CORE_CONTROLLER_H
#define POWERDIAL_CORE_CONTROLLER_H

#include <limits>
#include <stdexcept>

namespace powerdial::core {

/** Configuration of the heart-rate controller. */
struct ControllerConfig
{
    double baseline_rate;   //!< b: heart rate at default knobs, beats/s.
    double target_rate;     //!< g: desired heart rate, beats/s.
    double gain = 1.0;      //!< k: 1.0 is the paper's deadbeat law.
    double min_speedup = 1.0; //!< Actuation floor (baseline setting).
    double max_speedup;     //!< Fastest calibrated knob speedup.
    /** Initial integrator state; NaN means "start at min_speedup". */
    double initial_speedup = std::numeric_limits<double>::quiet_NaN();
};

/** The integral heart-rate controller. */
class HeartRateController
{
  public:
    explicit HeartRateController(const ControllerConfig &config);

    /**
     * One control step: observe heart rate @p observed_rate, return the
     * speedup to apply over the next quantum (clamped to the
     * [min_speedup, max_speedup] actuation range).
     */
    double update(double observed_rate);

    /** Current (last returned) speedup command. */
    double speedup() const { return speedup_; }

    /** Reset the integrator to the baseline operating point. */
    void reset() { speedup_ = config_.min_speedup; }

    /** Re-aim the controller at a new target heart rate. */
    void setTarget(double target_rate);

    const ControllerConfig &config() const { return config_; }

    /**
     * Closed-loop pole location for gain @p k: z = 1 - k.
     * |pole| < 1 iff the loop is stable (paper's k = 1 gives z = 0).
     */
    static double closedLoopPole(double gain) { return 1.0 - gain; }

    /**
     * Approximate convergence time in control periods,
     * t_c ~ -4 / log10(|p|) (paper section 2.3.2); 0 for a deadbeat
     * pole at the origin.
     */
    static double convergencePeriods(double gain);

  private:
    ControllerConfig config_;
    double speedup_;
};

} // namespace powerdial::core

#endif // POWERDIAL_CORE_CONTROLLER_H
