#include "core/pareto.h"

#include <algorithm>

namespace powerdial::core {

bool
dominates(const OperatingPoint &a, const OperatingPoint &b)
{
    const bool no_worse =
        a.speedup >= b.speedup && a.qos_loss <= b.qos_loss;
    const bool strictly_better =
        a.speedup > b.speedup || a.qos_loss < b.qos_loss;
    return no_worse && strictly_better;
}

std::vector<OperatingPoint>
paretoFrontier(const std::vector<OperatingPoint> &points)
{
    std::vector<OperatingPoint> sorted = points;
    // Sort by ascending QoS loss, descending speedup within ties.
    std::sort(sorted.begin(), sorted.end(),
              [](const OperatingPoint &a, const OperatingPoint &b) {
                  if (a.qos_loss != b.qos_loss)
                      return a.qos_loss < b.qos_loss;
                  return a.speedup > b.speedup;
              });

    std::vector<OperatingPoint> frontier;
    double best_speedup = -1.0;
    for (const auto &p : sorted) {
        if (p.speedup > best_speedup) {
            frontier.push_back(p);
            best_speedup = p.speedup;
        }
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const OperatingPoint &a, const OperatingPoint &b) {
                  return a.speedup < b.speedup;
              });
    return frontier;
}

} // namespace powerdial::core
